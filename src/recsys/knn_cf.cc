#include "recsys/knn_cf.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

namespace spa::recsys {

namespace {

/// Sparse cosine between two (key, weight) lists.
template <typename K>
double CosineOf(const std::vector<std::pair<K, double>>& a,
                const std::vector<std::pair<K, double>>& b,
                double norm_a_sq, double norm_b_sq) {
  if (norm_a_sq == 0.0 || norm_b_sq == 0.0) return 0.0;
  // Hash the shorter list for the join.
  const auto& small = a.size() <= b.size() ? a : b;
  const auto& large = a.size() <= b.size() ? b : a;
  std::unordered_map<K, double> index;
  index.reserve(small.size());
  for (const auto& [key, w] : small) index.emplace(key, w);
  double dot = 0.0;
  for (const auto& [key, w] : large) {
    const auto it = index.find(key);
    if (it != index.end()) dot += w * it->second;
  }
  return dot / (std::sqrt(norm_a_sq) * std::sqrt(norm_b_sq));
}

}  // namespace

UserKnnRecommender::UserKnnRecommender(KnnConfig config)
    : config_(config) {}

spa::Status UserKnnRecommender::Fit(const InteractionMatrix& matrix) {
  matrix_ = &matrix;
  return spa::Status::OK();
}

double UserKnnRecommender::Similarity(UserId a, UserId b) const {
  return CosineOf(matrix_->ItemsOf(a), matrix_->ItemsOf(b),
                  matrix_->UserNormSquared(a),
                  matrix_->UserNormSquared(b));
}

std::vector<Scored> UserKnnRecommender::RecommendCandidates(
    const CandidateQuery& query) const {
  std::vector<Scored> out;
  if (matrix_ == nullptr) return out;
  const UserId user = query.user;
  const auto& own_items = matrix_->ItemsOf(user);

  // Candidate neighbors: users sharing at least one item.
  std::unordered_map<UserId, double> similarity;
  for (const auto& [item, w] : own_items) {
    for (const auto& [other, w2] : matrix_->UsersOf(item)) {
      if (other != user) similarity.emplace(other, 0.0);
    }
  }
  for (auto& [other, sim] : similarity) {
    sim = Similarity(user, other);
  }

  // Keep the top-k neighbors.
  std::vector<std::pair<UserId, double>> neighbors(similarity.begin(),
                                                   similarity.end());
  std::sort(neighbors.begin(), neighbors.end(),
            [](const auto& a, const auto& b) {
              if (a.second != b.second) return a.second > b.second;
              return a.first < b.first;
            });
  if (neighbors.size() > config_.neighbors) {
    neighbors.resize(config_.neighbors);
  }

  std::unordered_map<ItemId, double> scores;
  for (const auto& [other, sim] : neighbors) {
    if (sim < config_.min_similarity) continue;
    for (const auto& [item, w] : matrix_->ItemsOf(other)) {
      if (query.Admits(matrix_, item)) scores[item] += sim * w;
    }
  }
  out.reserve(scores.size());
  for (const auto& [item, score] : scores) out.push_back({item, score});
  SortAndTruncate(&out, query.k);
  return out;
}

ItemKnnRecommender::ItemKnnRecommender(KnnConfig config)
    : config_(config) {}

spa::Status ItemKnnRecommender::Fit(const InteractionMatrix& matrix) {
  matrix_ = &matrix;
  return spa::Status::OK();
}

double ItemKnnRecommender::Similarity(ItemId a, ItemId b) const {
  return CosineOf(matrix_->UsersOf(a), matrix_->UsersOf(b),
                  matrix_->ItemNormSquared(a),
                  matrix_->ItemNormSquared(b));
}

std::vector<Scored> ItemKnnRecommender::RecommendCandidates(
    const CandidateQuery& query) const {
  std::vector<Scored> out;
  if (matrix_ == nullptr) return out;
  const UserId user = query.user;
  const auto& own_items = matrix_->ItemsOf(user);

  // Candidate items: co-interacted with the user's items.
  std::unordered_map<ItemId, double> scores;
  for (const auto& [item, weight] : own_items) {
    // Items sharing a user with `item`.
    std::unordered_map<ItemId, bool> candidates;
    for (const auto& [other_user, w2] : matrix_->UsersOf(item)) {
      for (const auto& [candidate, w3] :
           matrix_->ItemsOf(other_user)) {
        if (query.Admits(matrix_, candidate)) {
          candidates.emplace(candidate, true);
        }
      }
    }
    // Rank neighbor similarities for this source item.
    std::vector<std::pair<ItemId, double>> sims;
    sims.reserve(candidates.size());
    for (const auto& [candidate, unused] : candidates) {
      const double sim = Similarity(item, candidate);
      if (sim >= config_.min_similarity) {
        sims.emplace_back(candidate, sim);
      }
    }
    std::sort(sims.begin(), sims.end(),
              [](const auto& a, const auto& b) {
                if (a.second != b.second) return a.second > b.second;
                return a.first < b.first;
              });
    if (sims.size() > config_.neighbors) sims.resize(config_.neighbors);
    for (const auto& [candidate, sim] : sims) {
      scores[candidate] += sim * weight;
    }
  }

  out.reserve(scores.size());
  for (const auto& [item, score] : scores) out.push_back({item, score});
  SortAndTruncate(&out, query.k);
  return out;
}

}  // namespace spa::recsys
