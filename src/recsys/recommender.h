#ifndef SPA_RECSYS_RECOMMENDER_H_
#define SPA_RECSYS_RECOMMENDER_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "recsys/interaction_matrix.h"

/// \file
/// Common recommender interface for the Burke-taxonomy baselines the
/// paper positions itself against (collaborative, content-based,
/// hybrid) and for SPA's emotion-aware layer on top.

namespace spa::recsys {

/// A scored candidate item.
struct Scored {
  ItemId item = lifelog::kNoItem;
  double score = 0.0;
};

/// \brief Interface: fit on interactions, produce ranked suggestions.
class Recommender {
 public:
  virtual ~Recommender() = default;

  /// Fits internal structures; the matrix must outlive the recommender.
  virtual spa::Status Fit(const InteractionMatrix& matrix) = 0;

  /// Top-k items for the user, highest score first, excluding items the
  /// user already interacted with.
  virtual std::vector<Scored> Recommend(UserId user, size_t k) const = 0;

  virtual std::string name() const = 0;
};

/// Sorts candidates by (score desc, item asc) and truncates to k.
void SortAndTruncate(std::vector<Scored>* candidates, size_t k);

}  // namespace spa::recsys

#endif  // SPA_RECSYS_RECOMMENDER_H_
