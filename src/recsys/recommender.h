#ifndef SPA_RECSYS_RECOMMENDER_H_
#define SPA_RECSYS_RECOMMENDER_H_

#include <string>
#include <unordered_set>
#include <vector>

#include "common/status.h"
#include "recsys/interaction_matrix.h"

/// \file
/// Common recommender interface for the Burke-taxonomy baselines the
/// paper positions itself against (collaborative, content-based,
/// hybrid) and for SPA's emotion-aware layer on top.
///
/// Candidate generation is driven by a `CandidateQuery`: the user and
/// cutoff plus an explicit exclusion policy. Whether already-seen items
/// are filtered is a *request* decision (`ExcludeSeen`), not something
/// each recommender hard-wires; the query can additionally carry an
/// explicit denylist (items known to be seen outside the sparse
/// interaction matrix) and an allowlist restricting the candidate pool.

namespace spa::recsys {

struct SimilarityIndexStats;  // recsys/similarity_index.h

/// A scored candidate item.
struct Scored {
  ItemId item = lifelog::kNoItem;
  double score = 0.0;
};

/// Policy: filter items the user already interacted with?
enum class ExcludeSeen { kYes, kNo };

/// \brief Candidate-generation parameters shared by every recommender.
///
/// The referenced sets (if any) are borrowed and must outlive the call.
struct CandidateQuery {
  UserId user = 0;
  size_t k = 0;
  ExcludeSeen exclude_seen = ExcludeSeen::kYes;
  /// Items never to return, regardless of `exclude_seen` (e.g. items the
  /// caller knows were seen but that a sparse matrix missed).
  const std::unordered_set<ItemId>* exclude_items = nullptr;
  /// When non-null, only these items may be returned.
  const std::unordered_set<ItemId>* candidate_items = nullptr;

  /// True when `item` may be recommended under this query's policy.
  /// `matrix` may be null (no seen-filtering possible then).
  bool Admits(const InteractionMatrix* matrix, ItemId item) const;
};

/// \brief Interface: fit on interactions, produce ranked suggestions.
class Recommender {
 public:
  virtual ~Recommender() = default;

  /// Fits internal structures; the matrix must outlive the recommender.
  virtual spa::Status Fit(const InteractionMatrix& matrix) = 0;

  /// Top-k items under the query's candidate policy, highest score
  /// first (ties broken by ascending item id).
  virtual std::vector<Scored> RecommendCandidates(
      const CandidateQuery& query) const = 0;

  virtual std::string name() const = 0;

  /// Fit-time similarity-index statistics; null for recommenders that
  /// keep no index (serving layers surface these per component).
  virtual const SimilarityIndexStats* index_stats() const {
    return nullptr;
  }
};

/// Sorts candidates by (score desc, item asc) and truncates to k.
void SortAndTruncate(std::vector<Scored>* candidates, size_t k);

}  // namespace spa::recsys

#endif  // SPA_RECSYS_RECOMMENDER_H_
