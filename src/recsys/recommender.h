#ifndef SPA_RECSYS_RECOMMENDER_H_
#define SPA_RECSYS_RECOMMENDER_H_

#include <string>
#include <unordered_set>
#include <vector>

#include "common/status.h"
#include "recsys/interaction_matrix.h"

/// \file
/// Common recommender interface for the Burke-taxonomy baselines the
/// paper positions itself against (collaborative, content-based,
/// hybrid) and for SPA's emotion-aware layer on top.
///
/// Candidate generation is driven by a `CandidateQuery`: the user and
/// cutoff plus an explicit exclusion policy. Whether already-seen items
/// are filtered is a *request* decision (`ExcludeSeen`), not something
/// each recommender hard-wires; the query can additionally carry an
/// explicit denylist (items known to be seen outside the sparse
/// interaction matrix) and an allowlist restricting the candidate pool.

namespace spa::recsys {

struct SimilarityIndexStats;  // recsys/similarity_index.h

namespace kernels {
struct ScoreWorkspace;  // recsys/kernels.h
}

/// A scored candidate item.
struct Scored {
  ItemId item = lifelog::kNoItem;
  double score = 0.0;
};

/// Policy: filter items the user already interacted with?
enum class ExcludeSeen { kYes, kNo };

/// \brief Candidate-generation parameters shared by every recommender.
///
/// The referenced sets (if any) are borrowed and must outlive the call.
struct CandidateQuery {
  UserId user = 0;
  size_t k = 0;
  ExcludeSeen exclude_seen = ExcludeSeen::kYes;
  /// Items never to return, regardless of `exclude_seen` (e.g. items the
  /// caller knows were seen but that a sparse matrix missed).
  const std::unordered_set<ItemId>* exclude_items = nullptr;
  /// When non-null, only these items may be returned.
  const std::unordered_set<ItemId>* candidate_items = nullptr;
  /// Reusable scoring scratch (accumulator + product buffer) threaded
  /// by the serving engine so the warm path allocates nothing. Null
  /// falls back to a thread-local workspace; the scores are bitwise
  /// identical either way.
  kernels::ScoreWorkspace* workspace = nullptr;

  /// True when `item` may be recommended under this query's policy.
  /// `matrix` may be null (no seen-filtering possible then).
  bool Admits(const InteractionMatrix* matrix, ItemId item) const;
};

/// \brief What one Recommender::Refresh call did — the serving layer
/// aggregates these to decide which users' cached responses to drop.
struct RefreshOutcome {
  /// The component keeps a fit-time index and brought it in sync.
  bool refreshed_index = false;
  /// The refresh fell back to rebuilding every row.
  bool full_rebuild = false;
  /// Index rows rebuilt (or totals recomputed) by this refresh.
  size_t rows_refreshed = 0;
  double seconds = 0.0;
  /// Users whose rankings may have changed beyond the updated users
  /// themselves (reverse neighbors, holders of re-scored items).
  /// Ignored when `all_users` is set. May contain duplicates.
  std::vector<UserId> affected_users;
  /// Set when the component cannot bound the affected user set — the
  /// serving layer must treat every user as potentially changed.
  bool all_users = false;
};

/// \brief Interface: fit on interactions, produce ranked suggestions.
class Recommender {
 public:
  virtual ~Recommender() = default;

  /// Fits internal structures; the matrix must outlive the recommender.
  virtual spa::Status Fit(const InteractionMatrix& matrix) = 0;

  /// Brings fitted state in sync with the (mutated) interaction matrix
  /// without a full refit — the live-update path. Implementations must
  /// leave serving bitwise-identical to a fresh Fit on the same matrix
  /// and report which users' rankings may have changed. The
  /// conservative base default assumes any user could be affected;
  /// components that serve purely from the live matrix (per-user
  /// state only, nothing fitted) should override with a no-op, and
  /// components with fitted structures should repair them
  /// incrementally.
  virtual spa::Status Refresh(RefreshOutcome* outcome) {
    outcome->all_users = true;
    return spa::Status::OK();
  }

  /// Top-k items under the query's candidate policy, highest score
  /// first (ties broken by ascending item id).
  virtual std::vector<Scored> RecommendCandidates(
      const CandidateQuery& query) const = 0;

  /// Allocation-aware variant: writes the same candidates into `*out`
  /// (replacing its contents) so a pooled caller reuses the vector's
  /// capacity across requests. The base default wraps
  /// RecommendCandidates; hot-path components override it to score
  /// through `query.workspace` without touching the heap.
  virtual void RecommendCandidatesInto(const CandidateQuery& query,
                                       std::vector<Scored>* out) const {
    *out = RecommendCandidates(query);
  }

  virtual std::string name() const = 0;

  /// Fit-time similarity-index statistics; null for recommenders that
  /// keep no index (serving layers surface these per component).
  virtual const SimilarityIndexStats* index_stats() const {
    return nullptr;
  }
};

/// Sorts candidates by (score desc, item asc) and truncates to k.
void SortAndTruncate(std::vector<Scored>* candidates, size_t k);

}  // namespace spa::recsys

#endif  // SPA_RECSYS_RECOMMENDER_H_
