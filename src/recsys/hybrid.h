#ifndef SPA_RECSYS_HYBRID_H_
#define SPA_RECSYS_HYBRID_H_

#include <memory>
#include <string>

#include "recsys/recommender.h"

/// \file
/// Weighted hybrid recommender (Burke's taxonomy, [2]): combines the
/// min-max-normalized scores of several base recommenders.

namespace spa::recsys {

struct HybridConfig {
  /// Candidates requested from each component before blending.
  size_t component_depth = 100;
};

/// \brief Weighted-combination hybrid.
class HybridRecommender : public Recommender {
 public:
  explicit HybridRecommender(HybridConfig config = {});

  /// Adds a component with its blending weight (weights need not sum
  /// to 1; they are used as given).
  void AddComponent(std::unique_ptr<Recommender> component,
                    double weight);

  spa::Status Fit(const InteractionMatrix& matrix) override;
  /// Refreshes every component and merges their outcomes (union of
  /// affected users, OR of the all-users/full-rebuild flags, summed
  /// costs).
  spa::Status Refresh(RefreshOutcome* outcome) override;
  std::vector<Scored> RecommendCandidates(
      const CandidateQuery& query) const override;
  void RecommendCandidatesInto(const CandidateQuery& query,
                               std::vector<Scored>* out) const override;
  std::string name() const override { return "WeightedHybrid"; }

  /// One blended candidate with its per-component weighted
  /// contributions (indexed like components; contributions sum to the
  /// blended score; empty unless contribution tracking was requested).
  struct Blended {
    ItemId item = lifelog::kNoItem;
    double score = 0.0;
    std::vector<double> contributions;
  };

  /// Blends component scores for the query without truncating to
  /// query.k, sorted by (score desc, item asc). With
  /// `track_contributions` each candidate also carries its
  /// per-component share — the explanation path of the serving
  /// engine; leave it off on the hot path (it allocates one vector
  /// per candidate). Exactly `FetchComponentCandidates` followed by
  /// `BlendFetched` — the staged serving dataflow calls the two
  /// halves as separate stages and is bitwise-identical by
  /// construction.
  std::vector<Blended> BlendCandidates(const CandidateQuery& query,
                                       bool track_contributions = true) const;

  /// Stage half 1: every component's candidates for the query (at
  /// `component_depth`, not query.k), indexed like components. The
  /// only half that reads the interaction matrix. When
  /// `component_seconds` is non-null it receives one wall-clock
  /// duration per component (the engine's L3 profiler items).
  std::vector<std::vector<Scored>> FetchComponentCandidates(
      const CandidateQuery& query,
      std::vector<double>* component_seconds = nullptr) const;

  /// Allocation-aware fetch: `*fetched` is resized to the component
  /// count and each inner vector is refilled in place, so a pooled
  /// caller's capacities persist across requests.
  void FetchComponentCandidatesInto(
      const CandidateQuery& query,
      std::vector<std::vector<Scored>>* fetched,
      std::vector<double>* component_seconds = nullptr) const;

  /// Stage half 2: min-max-normalizes each component's fetched list
  /// (floor = 1/(n+1), see the implementation comment), accumulates
  /// the weighted blend and sorts by (score desc, item asc). Pure —
  /// touches no fitted state beyond component weights, so it may run
  /// outside the serve lock against pinned fetch results.
  std::vector<Blended> BlendFetched(
      const std::vector<std::vector<Scored>>& fetched,
      bool track_contributions = true) const;

  /// Allocation-aware blend into `*blended`. Without contribution
  /// tracking the accumulation runs on `workspace` (null = a
  /// thread-local one) through the normalize/weigh kernel — the serve
  /// hot path; with tracking it keeps the map-based explanation code
  /// (those per-candidate vectors allocate regardless). Both produce
  /// bitwise-identical scores and ordering.
  void BlendFetchedInto(const std::vector<std::vector<Scored>>& fetched,
                        bool track_contributions,
                        kernels::ScoreWorkspace* workspace,
                        std::vector<Blended>* blended) const;

  size_t component_count() const { return components_.size(); }
  const Recommender& component(size_t i) const {
    return *components_[i].recommender;
  }
  std::string component_name(size_t i) const {
    return components_[i].recommender->name();
  }
  double component_weight(size_t i) const {
    return components_[i].weight;
  }

  const HybridConfig& config() const { return config_; }

 private:
  struct Component {
    std::unique_ptr<Recommender> recommender;
    double weight;
  };
  HybridConfig config_;
  std::vector<Component> components_;
};

}  // namespace spa::recsys

#endif  // SPA_RECSYS_HYBRID_H_
