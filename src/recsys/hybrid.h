#ifndef SPA_RECSYS_HYBRID_H_
#define SPA_RECSYS_HYBRID_H_

#include <memory>

#include "recsys/recommender.h"

/// \file
/// Weighted hybrid recommender (Burke's taxonomy, [2]): combines the
/// min-max-normalized scores of several base recommenders.

namespace spa::recsys {

/// \brief Weighted-combination hybrid.
class HybridRecommender : public Recommender {
 public:
  /// Adds a component with its blending weight (weights need not sum
  /// to 1; they are used as given).
  void AddComponent(std::unique_ptr<Recommender> component,
                    double weight);

  spa::Status Fit(const InteractionMatrix& matrix) override;
  std::vector<Scored> Recommend(UserId user, size_t k) const override;
  std::string name() const override { return "WeightedHybrid"; }

  size_t component_count() const { return components_.size(); }

 private:
  struct Component {
    std::unique_ptr<Recommender> recommender;
    double weight;
  };
  std::vector<Component> components_;
  /// Candidates requested from each component before blending.
  static constexpr size_t kComponentDepth = 100;
};

}  // namespace spa::recsys

#endif  // SPA_RECSYS_HYBRID_H_
