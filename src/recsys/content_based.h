#ifndef SPA_RECSYS_CONTENT_BASED_H_
#define SPA_RECSYS_CONTENT_BASED_H_

#include <unordered_map>

#include "ml/sparse.h"
#include "recsys/recommender.h"

/// \file
/// Content-based recommender: a user profile is the weighted centroid of
/// the attribute vectors of the items they interacted with; candidates
/// are ranked by cosine to the profile.

namespace spa::recsys {

/// \brief Content-based recommender over item attribute vectors.
class ContentBasedRecommender : public Recommender {
 public:
  /// Registers the attribute vector of an item (call before Fit).
  void SetItemFeatures(ItemId item, ml::SparseVector features);

  spa::Status Fit(const InteractionMatrix& matrix) override;
  /// No-op: profiles are derived from the live matrix per request and
  /// depend only on the queried user's own row (item features are
  /// static), so an interaction update affects nobody beyond the
  /// updated users themselves.
  spa::Status Refresh(RefreshOutcome* outcome) override {
    (void)outcome;
    return spa::Status::OK();
  }
  std::vector<Scored> RecommendCandidates(
      const CandidateQuery& query) const override;
  std::string name() const override { return "ContentBased"; }

  /// The profile vector of a user (dense, feature-space sized).
  std::vector<double> ProfileOf(UserId user) const;

 private:
  const InteractionMatrix* matrix_ = nullptr;
  std::unordered_map<ItemId, ml::SparseVector> item_features_;
  int32_t dims_ = 0;
};

}  // namespace spa::recsys

#endif  // SPA_RECSYS_CONTENT_BASED_H_
