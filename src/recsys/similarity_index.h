#ifndef SPA_RECSYS_SIMILARITY_INDEX_H_
#define SPA_RECSYS_SIMILARITY_INDEX_H_

#include <cmath>
#include <cstdint>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include "recsys/interaction_matrix.h"

/// \file
/// Fit-time truncated cosine neighbor index for the memory-based CF
/// recommenders. The lazy KNN serving path recomputes all-pairs sparse
/// cosines on every request — the dominant serving cost on cache-miss
/// traffic. At scale, neighborhood CF is served from a precomputed
/// neighbor graph instead: `Build{User,Item}SimilarityIndex` computes
/// each row's top-N neighbors once (in parallel over
/// `common/thread_pool`), and serving becomes a sorted-adjacency walk.
///
/// Storage is CSR-style: one flat `(id, similarity)` array plus
/// per-row offsets, rows keyed by user/item id. Every row is sorted by
/// (similarity desc, id asc) and already filtered to
/// `min_similarity`/truncated to `top_n`, so a serving config equal to
/// the build config reads rows verbatim — ranking parity with the lazy
/// path is exact (bitwise), not approximate.
///
/// The index is stamped with `InteractionMatrix::version()` at build
/// time. Consumers must treat a version mismatch as a hard error
/// (`SPA_CHECK`): serving neighborhoods of a mutated matrix silently
/// would return stale rankings with no way for callers to notice.

namespace spa::recsys {

/// Sparse cosine between two (key, weight) lists; hashes the shorter
/// list for the join. Shared by the lazy KNN path and the index build
/// so both produce bitwise-identical similarities. Non-positive
/// squared norms short-circuit to 0: the incrementally maintained
/// norms can round to a tiny negative value under cancellation, and
/// sqrt of that would poison similarities with NaN.
template <typename K>
double SparseCosine(const std::vector<std::pair<K, double>>& a,
                    const std::vector<std::pair<K, double>>& b,
                    double norm_a_sq, double norm_b_sq) {
  if (norm_a_sq <= 0.0 || norm_b_sq <= 0.0) return 0.0;
  const auto& small = a.size() <= b.size() ? a : b;
  const auto& large = a.size() <= b.size() ? b : a;
  std::unordered_map<K, double> index;
  index.reserve(small.size());
  for (const auto& [key, w] : small) index.emplace(key, w);
  double dot = 0.0;
  for (const auto& [key, w] : large) {
    const auto it = index.find(key);
    if (it != index.end()) dot += w * it->second;
  }
  return dot / (std::sqrt(norm_a_sq) * std::sqrt(norm_b_sq));
}

/// \brief Build parameters of a similarity index.
struct SimilarityIndexConfig {
  /// Neighbors kept per row (k of the serving KNN).
  size_t top_n = 20;
  /// Neighbors below this similarity are not stored.
  double min_similarity = 1e-6;
  /// Worker threads for the build; 0 = auto (hardware concurrency for
  /// large matrices, serial for small ones). The built index is
  /// identical for every thread count.
  size_t build_threads = 0;
};

/// \brief Build-time cost/size report of one index.
struct SimilarityIndexStats {
  size_t rows = 0;             ///< rows indexed (users or items)
  size_t entries = 0;          ///< stored (id, similarity) pairs
  size_t memory_bytes = 0;     ///< estimated resident size
  double build_seconds = 0.0;  ///< wall-clock build time
  size_t build_threads = 0;    ///< workers the build actually used
  uint64_t matrix_version = 0; ///< matrix version stamped at build
};

/// \brief Immutable truncated neighbor graph over users or items.
///
/// Instantiated as `SimilarityIndex<UserId>` (user-user, for UserKNN)
/// and `SimilarityIndex<ItemId>` (item-item, for ItemKNN). Reads are
/// lock-free and thread-safe (the structure never mutates after
/// build).
template <typename Id>
class SimilarityIndex {
 public:
  /// One stored neighbor edge.
  struct Neighbor {
    Id id{};
    double similarity = 0.0;
  };

  SimilarityIndex(std::unordered_map<Id, size_t> row_of,
                  std::vector<size_t> offsets,
                  std::vector<Neighbor> neighbors,
                  SimilarityIndexStats stats)
      : row_of_(std::move(row_of)),
        offsets_(std::move(offsets)),
        neighbors_(std::move(neighbors)),
        stats_(stats) {}

  /// Neighbors of `id`, sorted by (similarity desc, id asc), already
  /// min-similarity-filtered and top-N-truncated. Empty for unknown
  /// ids.
  std::span<const Neighbor> NeighborsOf(Id id) const {
    const auto it = row_of_.find(id);
    if (it == row_of_.end()) return {};
    const size_t row = it->second;
    return std::span<const Neighbor>(neighbors_.data() + offsets_[row],
                                     offsets_[row + 1] - offsets_[row]);
  }

  /// The `InteractionMatrix::version()` the index was built against.
  /// Serving must hard-fail when this no longer matches the live
  /// matrix.
  uint64_t built_version() const { return stats_.matrix_version; }

  const SimilarityIndexStats& stats() const { return stats_; }

 private:
  std::unordered_map<Id, size_t> row_of_;
  std::vector<size_t> offsets_;  ///< rows + 1 entries
  std::vector<Neighbor> neighbors_;
  SimilarityIndexStats stats_;
};

/// Builds the user-user index (cosine over item-interaction vectors).
SimilarityIndex<UserId> BuildUserSimilarityIndex(
    const InteractionMatrix& matrix,
    const SimilarityIndexConfig& config = {});

/// Builds the item-item index (cosine over user-interaction vectors).
SimilarityIndex<ItemId> BuildItemSimilarityIndex(
    const InteractionMatrix& matrix,
    const SimilarityIndexConfig& config = {});

}  // namespace spa::recsys

#endif  // SPA_RECSYS_SIMILARITY_INDEX_H_
