#ifndef SPA_RECSYS_SIMILARITY_INDEX_H_
#define SPA_RECSYS_SIMILARITY_INDEX_H_

#include <bit>
#include <cmath>
#include <cstdint>
#include <span>
#include <type_traits>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/hash.h"
#include "recsys/interaction_matrix.h"
#include "recsys/kernels.h"

/// \file
/// Fit-time truncated cosine neighbor index for the memory-based CF
/// recommenders, with incremental maintenance for live-update serving.
///
/// The lazy KNN serving path recomputes all-pairs sparse cosines on
/// every request — the dominant serving cost on cache-miss traffic. At
/// scale, neighborhood CF is served from a precomputed neighbor graph:
/// `Build{User,Item}SimilarityIndex` computes each row's top-N
/// neighbors once (in parallel over `common/thread_pool`), and serving
/// becomes a sorted-adjacency walk.
///
/// Rows are sorted by (similarity desc, id asc), already filtered to
/// `min_similarity` and truncated to `top_n`, so a serving config equal
/// to the build config reads rows verbatim — ranking parity with the
/// lazy path is exact (bitwise), not approximate.
///
/// ## Incremental maintenance
///
/// The index is stamped with `InteractionMatrix::version()` at build.
/// A post-build matrix mutation used to be fatal; it is now repaired
/// in place: `Refresh{User,Item}SimilarityIndex` asks the sharded
/// store which rows mutated since the stamp
/// (`UsersTouchedSince`/`ItemsTouchedSince` — clean shards are
/// skipped), expands them to the affected set (the dirty rows plus
/// every row sharing a key with one, i.e. the reverse neighbors whose
/// similarities involve a mutated vector), and rebuilds exactly those
/// rows in parallel. Rows outside the affected set cannot change —
/// every similarity they store involves only unmutated vectors — so
/// the refreshed index is bitwise identical to a from-scratch rebuild.
/// When the affected fraction exceeds
/// `SimilarityIndexConfig::full_rebuild_fraction`, refresh falls back
/// to a full rebuild (same result, better constant factor).
///
/// Serving a *stale* index (version mismatch, no Refresh) is still a
/// hard `SPA_CHECK` error: silently serving neighborhoods of a mutated
/// matrix would return wrong rankings with no way for callers to
/// notice. The live-update contract is mutate → Refresh → serve
/// (`RecsysEngine::ApplyInteractions` does all three).

namespace spa::recsys {

/// \brief Reusable sparse-cosine join state: hash the left (row)
/// vector once, then compute cosines against many right vectors.
///
/// The orientation is fixed — the left vector is always the hashed
/// side, the right vector is walked in storage order — so a similarity
/// never depends on which list happens to be shorter, and one-per-row
/// reuse (`SetLeft` once, `Against` per candidate) is bitwise
/// identical to the one-shot `SparseCosine` wrapper below. Matched
/// weight pairs are gathered into contiguous buffers and reduced by
/// `kernels::Dot` (SIMD with a bitwise-equal scalar reference). The
/// table and buffers grow monotonically and are epoch-cleared, so a
/// build loop reusing one joiner stops allocating after warm-up.
template <typename K>
class SparseCosineJoiner {
 public:
  void SetLeft(const std::vector<std::pair<K, double>>& a) {
    const size_t table =
        std::bit_ceil(std::max<size_t>(2 * a.size(), 16));
    if (stamps_.size() < table) {
      keys_.resize(table);
      weights_.resize(table);
      stamps_.assign(table, 0);
      epoch_ = 0;
    }
    mask_ = stamps_.size() - 1;
    ++epoch_;
    if (epoch_ == 0) {
      std::fill(stamps_.begin(), stamps_.end(), 0);
      epoch_ = 1;
    }
    for (const auto& [key, w] : a) {
      size_t idx = HashKey(key) & mask_;
      while (stamps_[idx] == epoch_ && keys_[idx] != key) {
        idx = (idx + 1) & mask_;
      }
      if (stamps_[idx] != epoch_) {  // first occurrence wins
        stamps_[idx] = epoch_;
        keys_[idx] = key;
        weights_[idx] = w;
      }
    }
  }

  /// Cosine of the current left vector against `b`. Non-positive
  /// squared norms short-circuit to 0: the incrementally maintained
  /// norms can round to a tiny negative value under cancellation, and
  /// sqrt of that would poison similarities with NaN.
  double Against(const std::vector<std::pair<K, double>>& b,
                 double norm_a_sq, double norm_b_sq) {
    if (norm_a_sq <= 0.0 || norm_b_sq <= 0.0) return 0.0;
    if (wa_.size() < b.size()) {
      wa_.resize(b.size());
      wb_.resize(b.size());
    }
    size_t n = 0;
    for (const auto& [key, w] : b) {
      size_t idx = HashKey(key) & mask_;
      while (stamps_[idx] == epoch_ && keys_[idx] != key) {
        idx = (idx + 1) & mask_;
      }
      if (stamps_[idx] == epoch_) {
        wa_[n] = weights_[idx];
        wb_[n] = w;
        ++n;
      }
    }
    const double dot = kernels::Dot(wa_.data(), wb_.data(), n);
    return dot / (std::sqrt(norm_a_sq) * std::sqrt(norm_b_sq));
  }

 private:
  static uint64_t HashKey(K key) {
    return SplitMix64(
        static_cast<uint64_t>(static_cast<std::make_unsigned_t<K>>(key)));
  }

  std::vector<K> keys_;
  std::vector<double> weights_;
  std::vector<uint32_t> stamps_;
  std::vector<double> wa_, wb_;
  size_t mask_ = 0;
  uint32_t epoch_ = 0;
};

/// Sparse cosine between two (key, weight) lists. Shared by the lazy
/// KNN path and the index build so both produce bitwise-identical
/// similarities (both route through `SparseCosineJoiner`, left = `a`).
template <typename K>
double SparseCosine(const std::vector<std::pair<K, double>>& a,
                    const std::vector<std::pair<K, double>>& b,
                    double norm_a_sq, double norm_b_sq) {
  thread_local SparseCosineJoiner<K> joiner;
  joiner.SetLeft(a);
  return joiner.Against(b, norm_a_sq, norm_b_sq);
}

/// \brief Build/refresh parameters of a similarity index.
struct SimilarityIndexConfig {
  /// Neighbors kept per row (k of the serving KNN).
  size_t top_n = 20;
  /// Neighbors below this similarity are not stored.
  double min_similarity = 1e-6;
  /// Worker threads for builds and refreshes; 0 = auto (hardware
  /// concurrency for large row sets, serial for small ones). The
  /// result is identical for every thread count.
  size_t build_threads = 0;
  /// Refresh falls back to a full rebuild when the affected rows
  /// exceed this fraction of all rows (0 forces full rebuilds, >= 1
  /// never falls back). Incremental and full paths produce bitwise-
  /// identical indexes; this only trades constant factors.
  double full_rebuild_fraction = 0.25;
};

/// \brief Cost/size report of one index (cumulative across refreshes).
struct SimilarityIndexStats {
  size_t rows = 0;             ///< rows indexed (users or items)
  size_t entries = 0;          ///< stored (id, similarity) pairs
  size_t memory_bytes = 0;     ///< estimated resident size
  double build_seconds = 0.0;  ///< wall-clock time of the initial build
  size_t build_threads = 0;    ///< workers the build actually used
  uint64_t matrix_version = 0; ///< matrix version the index matches
  // ---- incremental maintenance ------------------------------------------
  uint64_t refreshes = 0;           ///< Refresh calls that found dirt
  uint64_t full_rebuild_refreshes = 0;  ///< refreshes that rebuilt all
  uint64_t rows_refreshed_total = 0;    ///< rows rebuilt incrementally
  size_t last_refresh_rows = 0;     ///< rows rebuilt by the last one
  double last_refresh_seconds = 0.0;
};

/// \brief Refresh outcome (per index; the serving layer aggregates).
template <typename Id>
struct SimilarityRefreshReport {
  /// False when the index already matched the matrix (no-op).
  bool refreshed = false;
  bool full_rebuild = false;
  /// Rows directly mutated in the matrix since the last sync.
  size_t dirty_rows = 0;
  /// Every rebuilt row (dirty + reverse neighbors), ascending; empty
  /// when `full_rebuild` (all rows were rebuilt).
  std::vector<Id> rows;
  double seconds = 0.0;
};

/// \brief Truncated neighbor graph over users or items.
///
/// Instantiated as `SimilarityIndex<UserId>` (user-user, for UserKNN)
/// and `SimilarityIndex<ItemId>` (item-item, for ItemKNN). Reads are
/// lock-free and thread-safe against each other; refreshes mutate the
/// structure and must be serialized against reads by the owner (the
/// engine holds its writer lock across `ApplyInteractions`).
template <typename Id>
class SimilarityIndex {
 public:
  /// One stored neighbor edge.
  struct Neighbor {
    Id id{};
    double similarity = 0.0;
  };

  SimilarityIndex(std::unordered_map<Id, size_t> row_of,
                  std::vector<std::vector<Neighbor>> rows,
                  SimilarityIndexConfig config,
                  SimilarityIndexStats stats)
      : row_of_(std::move(row_of)),
        rows_(std::move(rows)),
        config_(config),
        stats_(stats) {}

  /// Neighbors of `id`, sorted by (similarity desc, id asc), already
  /// min-similarity-filtered and top-N-truncated. Empty for unknown
  /// ids.
  std::span<const Neighbor> NeighborsOf(Id id) const {
    const auto it = row_of_.find(id);
    if (it == row_of_.end()) return {};
    return std::span<const Neighbor>(rows_[it->second]);
  }

  /// The `InteractionMatrix::version()` the index currently matches
  /// (stamped at build, advanced by every refresh). Serving must
  /// hard-fail when this no longer matches the live matrix.
  uint64_t built_version() const { return stats_.matrix_version; }

  const SimilarityIndexStats& stats() const { return stats_; }
  const SimilarityIndexConfig& config() const { return config_; }

  // ---- maintenance API (used by Refresh*SimilarityIndex) -----------------

  /// Replaces a row's neighbor list, inserting the row if `id` is new
  /// (live updates can introduce users/items the build never saw).
  /// Entry/memory stats are maintained as deltas: a small refresh must
  /// not pay an O(all rows) rescan just to keep figures current.
  void ReplaceRow(Id id, std::vector<Neighbor> row) {
    stats_.entries += row.size();
    stats_.memory_bytes += row.capacity() * sizeof(Neighbor);
    const auto [it, inserted] = row_of_.try_emplace(id, rows_.size());
    if (inserted) {
      rows_.push_back(std::move(row));
      stats_.memory_bytes +=
          sizeof(std::pair<Id, size_t>) + 2 * sizeof(void*) +
          sizeof(std::vector<Neighbor>);
    } else {
      std::vector<Neighbor>& old = rows_[it->second];
      stats_.entries -= old.size();
      stats_.memory_bytes -= old.capacity() * sizeof(Neighbor);
      old = std::move(row);
    }
  }

  /// Re-stamps the matrix version and folds one refresh into the
  /// cumulative stats.
  void CommitRefresh(uint64_t matrix_version, size_t rows_refreshed,
                     bool full_rebuild, double seconds) {
    stats_.matrix_version = matrix_version;
    ++stats_.refreshes;
    if (full_rebuild) ++stats_.full_rebuild_refreshes;
    stats_.rows_refreshed_total += rows_refreshed;
    stats_.last_refresh_rows = rows_refreshed;
    stats_.last_refresh_seconds = seconds;
    stats_.rows = rows_.size();
  }

  /// Swaps in a from-scratch rebuild while keeping the cumulative
  /// refresh counters (the full-rebuild fallback path).
  void AdoptRebuild(SimilarityIndex&& rebuilt) {
    const SimilarityIndexStats cumulative = stats_;
    row_of_ = std::move(rebuilt.row_of_);
    rows_ = std::move(rebuilt.rows_);
    stats_ = rebuilt.stats_;
    stats_.build_seconds = cumulative.build_seconds;
    stats_.refreshes = cumulative.refreshes;
    stats_.full_rebuild_refreshes = cumulative.full_rebuild_refreshes;
    stats_.rows_refreshed_total = cumulative.rows_refreshed_total;
    stats_.last_refresh_rows = cumulative.last_refresh_rows;
    stats_.last_refresh_seconds = cumulative.last_refresh_seconds;
  }

 private:
  std::unordered_map<Id, size_t> row_of_;
  std::vector<std::vector<Neighbor>> rows_;
  SimilarityIndexConfig config_;
  SimilarityIndexStats stats_;
};

/// Builds the user-user index (cosine over item-interaction vectors).
SimilarityIndex<UserId> BuildUserSimilarityIndex(
    const InteractionMatrix& matrix,
    const SimilarityIndexConfig& config = {});

/// Builds the item-item index (cosine over user-interaction vectors).
SimilarityIndex<ItemId> BuildItemSimilarityIndex(
    const InteractionMatrix& matrix,
    const SimilarityIndexConfig& config = {});

/// Brings `index` in sync with `matrix` by rebuilding only the rows a
/// mutation could have changed (bitwise-identical to a full rebuild;
/// see the file comment for why the affected set is exact).
SimilarityRefreshReport<UserId> RefreshUserSimilarityIndex(
    SimilarityIndex<UserId>* index, const InteractionMatrix& matrix);

SimilarityRefreshReport<ItemId> RefreshItemSimilarityIndex(
    SimilarityIndex<ItemId>* index, const InteractionMatrix& matrix);

}  // namespace spa::recsys

#endif  // SPA_RECSYS_SIMILARITY_INDEX_H_
