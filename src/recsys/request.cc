#include "recsys/request.h"

namespace spa::recsys {

spa::Status ValidateRequest(const RecommendRequest& request) {
  if (request.k == 0) {
    return spa::Status::InvalidArgument("request.k must be > 0");
  }
  if (request.candidate_items.has_value() &&
      request.candidate_items->empty()) {
    return spa::Status::InvalidArgument(
        "candidate_items present but empty; omit it to allow all "
        "items");
  }
  // An allowlist fully covered by exclusions is NOT an error: it
  // yields an empty response, exactly like an allowlist of items the
  // user already saw. (The serving layer merges server-side seen-item
  // exclusions into the request, so this state is reachable from a
  // perfectly valid call.)
  return spa::Status::OK();
}

std::vector<Scored> RecommendResponse::AsScored() const {
  std::vector<Scored> out;
  out.reserve(items.size());
  for (const RecommendedItem& item : items) {
    out.push_back({item.item, item.score});
  }
  return out;
}

}  // namespace spa::recsys
