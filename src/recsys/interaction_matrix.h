#ifndef SPA_RECSYS_INTERACTION_MATRIX_H_
#define SPA_RECSYS_INTERACTION_MATRIX_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "lifelog/event.h"

namespace spa {
class ThreadPool;
}

/// \file
/// User-item interaction store backing the collaborative-filtering
/// stack. Weights encode interaction strength (view < click <
/// info-request < enrolment).
///
/// The store is sharded for live-update serving at scale: user rows
/// live in N user-hash shards and item postings in N item-hash shards,
/// each shard with its own mutation lock, mutation counter, norm maps
/// and dirty-row stamps. The read API (`ItemsOf`/`UsersOf`/`Seen`,
/// counts, norms, `users()`/`items()`) is unchanged from the unsharded
/// store, and the stored data is bit-for-bit identical for every shard
/// count — per-row vectors keep global insertion order, so every
/// similarity the index layer computes is shard-count-invariant.
///
/// Thread-safety contract:
///  * concurrent `Add`s are safe (per-shard locking; registration
///    order of brand-new users/items is then timing-dependent, so
///    deterministic pipelines apply batches from one thread);
///  * `ApplyBatch` applies a whole batch with shard-group parallelism
///    while staying byte-identical to a sequential `Add` loop — it
///    requires exclusive access (no concurrent readers or writers);
///  * reads are lock-free and must not race writes — serving layers
///    coordinate, e.g. `RecsysEngine::ApplyInteractions` takes the
///    engine's writer lock while requests hold the reader side.

namespace spa::recsys {

using UserId = lifelog::UserId;
using ItemId = lifelog::ItemId;

/// One weighted user-item interaction (also the unit of the engine's
/// live-update batches).
struct Interaction {
  UserId user = 0;
  ItemId item = lifelog::kNoItem;
  double weight = 1.0;
};

/// \brief Bidirectional sparse interaction store, sharded by user/item
/// hash.
class ShardedInteractionMatrix {
 public:
  /// `shards` user shards and `shards` item shards; 1 (the default)
  /// reproduces the unsharded layout bit-for-bit.
  explicit ShardedInteractionMatrix(size_t shards = 1);

  /// Movable (the platform rebuilds its store in place), not copyable
  /// (shards own locks; serving layers borrow by reference).
  ShardedInteractionMatrix(ShardedInteractionMatrix&&) = default;
  ShardedInteractionMatrix& operator=(ShardedInteractionMatrix&&) =
      default;
  ShardedInteractionMatrix(const ShardedInteractionMatrix&) = delete;
  ShardedInteractionMatrix& operator=(const ShardedInteractionMatrix&) =
      delete;

  /// Adds (accumulates) one interaction; routes the user row and the
  /// item postings to their shards and stamps both rows dirty.
  void Add(UserId user, ItemId item, double weight = 1.0);

  /// What one `ApplyBatch` spent per shard group, indexed by shard
  /// (0.0 and 0 ops for shards the batch never touched) — the
  /// engine's L3 profiler items.
  struct ShardGroupTiming {
    std::vector<double> user_shard_seconds;
    std::vector<double> item_shard_seconds;
    std::vector<size_t> user_shard_ops;
    std::vector<size_t> item_shard_ops;
  };

  /// Applies a whole interaction batch, byte-identical to a
  /// sequential `Add` loop over it (identical rows, postings, norms,
  /// stamps, versions and registration order — the determinism tests
  /// pin this), but with the per-shard work running in parallel on
  /// `pool`: a sequential routing pass fixes registration order and
  /// buckets ops per shard, then every user shard replays its ops in
  /// batch order (shard groups in parallel), then every item shard
  /// does the same against the cell transitions the user phase
  /// computed. Requires exclusive access to the matrix — callers hold
  /// their writer lock (per-shard mutexes are NOT taken; there is
  /// nothing to order when each shard is owned by exactly one task).
  /// `pool` may be null (runs the same phases sequentially).
  void ApplyBatch(const std::vector<Interaction>& batch, ThreadPool* pool,
                  ShardGroupTiming* timing = nullptr);

  /// Items of one user as (item, weight), unordered.
  const std::vector<std::pair<ItemId, double>>& ItemsOf(UserId user) const;

  /// Users of one item as (user, weight), unordered.
  const std::vector<std::pair<UserId, double>>& UsersOf(ItemId item) const;

  bool Seen(UserId user, ItemId item) const;

  size_t user_count() const { return global_->user_order.size(); }
  size_t item_count() const { return global_->item_order.size(); }
  size_t interaction_count() const {
    return global_->interactions.load(std::memory_order_relaxed);
  }

  /// Monotonic mutation counter: bumped by every Add (equals the sum
  /// of all shard versions). Serving layers key caches and similarity
  /// indexes on it.
  uint64_t version() const {
    return global_->version.load(std::memory_order_relaxed);
  }

  const std::vector<UserId>& users() const { return global_->user_order; }
  const std::vector<ItemId>& items() const { return global_->item_order; }

  /// Squared L2 norm of a user's interaction vector. O(1): maintained
  /// incrementally by Add (norms sit on every cosine-similarity path,
  /// both lazy and index-build).
  double UserNormSquared(UserId user) const;
  /// Squared L2 norm of an item's interaction vector. O(1).
  double ItemNormSquared(ItemId item) const;

  // ---- sharding introspection & dirty-row tracking -----------------------

  size_t shard_count() const { return user_shards_.size(); }
  /// Mutations routed to one user/item shard (all shards sum to
  /// `version()`).
  uint64_t user_shard_version(size_t shard) const;
  uint64_t item_shard_version(size_t shard) const;

  /// Users whose rows mutated after global version `since`, ascending.
  /// Shards untouched since `since` are skipped entirely, so a refresh
  /// after a small batch scans only the shards the batch hit.
  std::vector<UserId> UsersTouchedSince(uint64_t since) const;
  /// Items whose postings mutated after global version `since`,
  /// ascending.
  std::vector<ItemId> ItemsTouchedSince(uint64_t since) const;

 private:
  struct UserShard {
    std::unordered_map<UserId, std::vector<std::pair<ItemId, double>>>
        rows;
    std::unordered_map<UserId, double> norm_sq;
    /// Global version stamp of each row's last mutation.
    std::unordered_map<UserId, uint64_t> touched;
    uint64_t version = 0;       ///< mutations routed to this shard
    uint64_t last_touched = 0;  ///< global version of the latest one
    std::mutex mu;
  };
  struct ItemShard {
    std::unordered_map<ItemId, std::vector<std::pair<UserId, double>>>
        postings;
    std::unordered_map<ItemId, double> norm_sq;
    std::unordered_map<ItemId, uint64_t> touched;
    uint64_t version = 0;
    uint64_t last_touched = 0;
    std::mutex mu;
  };
  /// State shared across shards. Counters are atomic so shard-parallel
  /// writers do not race; the mutex guards the registration-order
  /// vectors.
  struct Global {
    std::vector<UserId> user_order;
    std::vector<ItemId> item_order;
    std::atomic<uint64_t> version{0};
    std::atomic<uint64_t> interactions{0};
    std::mutex order_mu;
  };

  size_t UserShardIndex(UserId user) const;
  size_t ItemShardIndex(ItemId item) const;

  std::vector<std::unique_ptr<UserShard>> user_shards_;
  std::vector<std::unique_ptr<ItemShard>> item_shards_;
  std::unique_ptr<Global> global_;
};

/// Every consumer of the store compiled against this name before the
/// sharding refactor; the alias keeps that API surface stable.
using InteractionMatrix = ShardedInteractionMatrix;

}  // namespace spa::recsys

#endif  // SPA_RECSYS_INTERACTION_MATRIX_H_
