#ifndef SPA_RECSYS_INTERACTION_MATRIX_H_
#define SPA_RECSYS_INTERACTION_MATRIX_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "lifelog/event.h"

/// \file
/// User-item interaction matrix backing the collaborative-filtering
/// baselines. Weights encode interaction strength (view < click <
/// info-request < enrolment).

namespace spa::recsys {

using UserId = lifelog::UserId;
using ItemId = lifelog::ItemId;

/// One weighted user-item interaction.
struct Interaction {
  UserId user = 0;
  ItemId item = lifelog::kNoItem;
  double weight = 1.0;
};

/// \brief Bidirectional sparse interaction index.
class InteractionMatrix {
 public:
  /// Adds (accumulates) one interaction.
  void Add(UserId user, ItemId item, double weight = 1.0);

  /// Items of one user as (item, weight), unordered.
  const std::vector<std::pair<ItemId, double>>& ItemsOf(UserId user) const;

  /// Users of one item as (user, weight), unordered.
  const std::vector<std::pair<UserId, double>>& UsersOf(ItemId item) const;

  bool Seen(UserId user, ItemId item) const;

  size_t user_count() const { return by_user_.size(); }
  size_t item_count() const { return by_item_.size(); }
  size_t interaction_count() const { return interactions_; }

  /// Monotonic mutation counter: bumped by every Add. Serving layers
  /// key caches on (matrix version at Fit) so stale entries can never
  /// outlive a refit on changed data.
  uint64_t version() const { return version_; }

  const std::vector<UserId>& users() const { return user_order_; }
  const std::vector<ItemId>& items() const { return item_order_; }

  /// Squared L2 norm of a user's interaction vector. O(1): maintained
  /// incrementally by Add (norms sit on every cosine-similarity path,
  /// both lazy and index-build).
  double UserNormSquared(UserId user) const;
  /// Squared L2 norm of an item's interaction vector. O(1).
  double ItemNormSquared(ItemId item) const;

 private:
  std::unordered_map<UserId, std::vector<std::pair<ItemId, double>>>
      by_user_;
  std::unordered_map<ItemId, std::vector<std::pair<UserId, double>>>
      by_item_;
  std::vector<UserId> user_order_;
  std::vector<ItemId> item_order_;
  std::unordered_map<UserId, double> user_norm_sq_;
  std::unordered_map<ItemId, double> item_norm_sq_;
  size_t interactions_ = 0;
  uint64_t version_ = 0;
};

}  // namespace spa::recsys

#endif  // SPA_RECSYS_INTERACTION_MATRIX_H_
