#include "recsys/router/serving_router.h"

#include <algorithm>
#include <mutex>
#include <utility>

#include "common/check.h"

namespace spa::recsys {

// ---- WorkerNode ----------------------------------------------------------

WorkerNode::WorkerNode(WorkerId id, const RouterConfig& config,
                       sum::SumService* sums,
                       const std::vector<Interaction>& replay_log)
    : id_(id), matrix_(config.engine.interaction_shards) {
  // Replay the router's ordered log: same Add sequence => bitwise-
  // identical matrix (bytes, norms, registration order, version) on
  // every replica, for any shard count.
  for (const Interaction& it : replay_log) {
    matrix_.Add(it.user, it.item, it.weight);
  }
  engine_ = std::make_unique<RecsysEngine>(config.engine);
  config.stack_builder(*engine_);
  engine_->set_sum_service(sums);
  status_ = engine_->Fit(&matrix_);
  if (!status_.ok()) return;

  PipelineConfig queue = config.queue;
  // All-or-nothing fan-out: a lossy admission policy could accept a
  // replicated write on one node and drop it on another.
  queue.policy = BackpressurePolicy::kBlock;
  // Node count is the router's scaling axis; one drain thread per
  // node unless the caller asked for more.
  if (queue.workers == 0) queue.workers = 1;
  pipeline_ = std::make_unique<ServingPipeline>(engine_.get(), sums, queue);
}

// ---- FanoutTicket --------------------------------------------------------

void FanoutTicket::Wait() const {
  for (const auto& [worker, ticket] : tickets_) ticket->Wait();
}

bool FanoutTicket::ok() const {
  for (const auto& [worker, ticket] : tickets_) {
    if (ticket->state() != TicketState::kDone) return false;
    if (!ticket->update_report().ok()) return false;
  }
  return !tickets_.empty();
}

uint64_t FanoutTicket::matrix_version() const {
  uint64_t version = 0;
  bool seen = false;
  for (const auto& [worker, ticket] : tickets_) {
    if (ticket->state() != TicketState::kDone ||
        !ticket->update_report().ok()) {
      continue;
    }
    const uint64_t v = ticket->update_report()->matrix_version;
    SPA_CHECK_MSG(!seen || v == version,
                  "replicas disagree on the post-apply matrix version");
    version = v;
    seen = true;
  }
  return version;
}

// ---- ServingRouter -------------------------------------------------------

spa::Result<std::unique_ptr<ServingRouter>> ServingRouter::Create(
    RouterConfig config, std::vector<Interaction> bootstrap,
    sum::SumService* sums) {
  SPA_CHECK_MSG(config.workers >= 1,
                "serving router needs >= 1 worker node");
  if (!config.stack_builder) {
    return spa::Status::InvalidArgument(
        "router config needs a stack_builder to assemble worker "
        "engines");
  }
  std::unique_ptr<ServingRouter> router(
      new ServingRouter(std::move(config), std::move(bootstrap), sums));
  for (size_t i = 0; i < router->config_.workers; ++i) {
    auto plan = router->AddWorker();
    if (!plan.ok()) return plan.status();
  }
  // The initial population is construction, not churn: report only
  // post-create membership changes in the stats.
  router->joins_.store(0);
  router->shards_moved_.store(0);
  return router;
}

ServingRouter::ServingRouter(RouterConfig config,
                             std::vector<Interaction> bootstrap,
                             sum::SumService* sums)
    : config_(std::move(config)),
      sums_(sums),
      directory_(config_.directory),
      log_(std::move(bootstrap)) {}

ServingRouter::~ServingRouter() { Shutdown(); }

std::unique_ptr<WorkerNode> ServingRouter::BuildNode(WorkerId id) const {
  return std::make_unique<WorkerNode>(id, config_, sums_, log_);
}

spa::Result<StreamTicketPtr> ServingRouter::Submit(
    RecommendRequest request, StreamTicket::Callback on_complete) {
  std::shared_lock lock(mu_);
  if (stopping_) {
    return spa::Status::FailedPrecondition("router is shut down");
  }
  const WorkerId owner = directory_.OwnerOf(request.user);
  auto it = nodes_.find(owner);
  SPA_CHECK_MSG(it != nodes_.end(),
                "directory routed to a worker the router does not hold");
  reads_routed_.fetch_add(1, std::memory_order_relaxed);
  return it->second->pipeline()->Submit(std::move(request),
                                        std::move(on_complete));
}

spa::Result<FanoutTicket> ServingRouter::SubmitInteractions(
    std::vector<Interaction> batch) {
  std::unique_lock lock(mu_);
  if (stopping_) {
    return spa::Status::FailedPrecondition("router is shut down");
  }
  log_.insert(log_.end(), batch.begin(), batch.end());
  FanoutTicket fanout;
  fanout.tickets_.reserve(nodes_.size());
  for (auto& [id, node] : nodes_) {
    auto ticket = node->pipeline()->SubmitInteractions(batch);
    // Worker lanes are kBlock and the router gates Shutdown, so
    // admission cannot fail underneath us.
    SPA_CHECK_MSG(ticket.ok(), "worker writer lane refused a fanned batch");
    fanout.tickets_.emplace_back(id, std::move(ticket).value());
  }
  writes_fanned_.fetch_add(1, std::memory_order_relaxed);
  return fanout;
}

spa::Result<StreamTicketPtr> ServingRouter::SubmitSumUpdates(
    std::vector<sum::SumUpdate> updates) {
  std::shared_lock lock(mu_);
  if (stopping_) {
    return spa::Status::FailedPrecondition("router is shut down");
  }
  if (sums_ == nullptr) {
    return spa::Status::FailedPrecondition(
        "router was built without a SUM service");
  }
  if (updates.empty()) {
    return spa::Status::InvalidArgument("empty SUM update batch");
  }
  const WorkerId owner = directory_.OwnerOf(updates.front().user());
  auto it = nodes_.find(owner);
  SPA_CHECK_MSG(it != nodes_.end(),
                "directory routed to a worker the router does not hold");
  sum_routed_.fetch_add(1, std::memory_order_relaxed);
  return it->second->pipeline()->SubmitSumUpdates(std::move(updates));
}

spa::Result<HandoffPlan> ServingRouter::AddWorker() {
  std::unique_lock lock(mu_);
  if (stopping_) {
    return spa::Status::FailedPrecondition("router is shut down");
  }
  const WorkerId id = next_worker_;
  std::unique_ptr<WorkerNode> node = BuildNode(id);
  if (!node->status().ok()) return node->status();
  auto plan = directory_.AddWorker(id);
  SPA_CHECK(plan.ok());  // ids are never reused
  next_worker_++;
  nodes_.emplace(id, std::move(node));
  joins_.fetch_add(1, std::memory_order_relaxed);
  shards_moved_.fetch_add(plan->moves.size(), std::memory_order_relaxed);
  return plan;
}

spa::Result<HandoffPlan> ServingRouter::RemoveWorker(WorkerId worker) {
  std::unique_lock lock(mu_);
  if (stopping_) {
    return spa::Status::FailedPrecondition("router is shut down");
  }
  auto it = nodes_.find(worker);
  if (it == nodes_.end()) {
    return spa::Status::NotFound("no such worker");
  }
  if (nodes_.size() == 1) {
    return spa::Status::FailedPrecondition(
        "router keeps at least one worker");
  }
  // Drain first: every already-admitted ticket completes before the
  // shards change hands, so no accepted request is ever lost to a
  // leave.
  it->second->pipeline()->Shutdown();
  auto plan = directory_.RemoveWorker(worker);
  SPA_CHECK(plan.ok());
  nodes_.erase(it);
  leaves_.fetch_add(1, std::memory_order_relaxed);
  shards_moved_.fetch_add(plan->moves.size(), std::memory_order_relaxed);
  return plan;
}

void ServingRouter::Flush() {
  std::shared_lock lock(mu_);
  for (auto& [id, node] : nodes_) node->pipeline()->Flush();
}

void ServingRouter::Shutdown() {
  std::unique_lock lock(mu_);
  if (stopping_) return;
  stopping_ = true;
  for (auto& [id, node] : nodes_) node->pipeline()->Shutdown();
}

size_t ServingRouter::worker_count() const {
  std::shared_lock lock(mu_);
  return nodes_.size();
}

std::vector<WorkerId> ServingRouter::worker_ids() const {
  std::shared_lock lock(mu_);
  std::vector<WorkerId> ids;
  ids.reserve(nodes_.size());
  for (const auto& [id, node] : nodes_) ids.push_back(id);
  return ids;
}

const WorkerNode* ServingRouter::worker(WorkerId id) const {
  std::shared_lock lock(mu_);
  auto it = nodes_.find(id);
  return it == nodes_.end() ? nullptr : it->second.get();
}

size_t ServingRouter::log_size() const {
  std::shared_lock lock(mu_);
  return log_.size();
}

RouterStats ServingRouter::stats() const {
  std::shared_lock lock(mu_);
  RouterStats stats;
  stats.directory_version = directory_.version();
  stats.reads_routed = reads_routed_.load(std::memory_order_relaxed);
  stats.writes_fanned = writes_fanned_.load(std::memory_order_relaxed);
  stats.sum_routed = sum_routed_.load(std::memory_order_relaxed);
  stats.joins = joins_.load(std::memory_order_relaxed);
  stats.leaves = leaves_.load(std::memory_order_relaxed);
  stats.shards_moved = shards_moved_.load(std::memory_order_relaxed);
  stats.workers.reserve(nodes_.size());
  for (const auto& [id, node] : nodes_) {
    RouterWorkerStats ws;
    ws.worker = id;
    ws.owned_shards = directory_.ShardsOwnedBy(id).size();
    ws.matrix_version = node->matrix().version();
    ws.pipeline = node->pipeline()->stats();
    ws.cache = node->engine()->cache_stats();
    ws.live_updates = node->engine()->live_update_stats();
    ws.stages = node->engine()->stage_stats();
    stats.fallback_served += ws.pipeline.fallback_served;
    stats.expired_drops += ws.pipeline.expired_drops;
    stats.end_to_end.Merge(ws.pipeline.end_to_end);
    stats.workers.push_back(std::move(ws));
  }
  return stats;
}

}  // namespace spa::recsys
