#include "recsys/router/ownership_directory.h"

#include <algorithm>
#include <mutex>

#include "common/check.h"
#include "common/hash.h"

namespace spa::recsys {

OwnershipDirectory::OwnershipDirectory(DirectoryConfig config)
    : config_(config) {
  SPA_CHECK_MSG(config_.virtual_shards >= 1,
                "ownership directory needs >= 1 virtual shard");
  owner_of_.assign(config_.virtual_shards, kNoWorker);
}

uint64_t OwnershipDirectory::RendezvousWeight(uint32_t shard,
                                              WorkerId worker) {
  // Decorrelate both coordinates before combining: shard and worker
  // ids are small sequential integers, and a single mix of (shard ^
  // worker) would make weight collisions structural.
  return SplitMix64(SplitMix64(shard) ^
                    SplitMix64(0x9e3779b97f4a7c15ULL +
                               static_cast<uint64_t>(worker)));
}

WorkerId OwnershipDirectory::WinnerOf(
    uint32_t shard, const std::vector<WorkerId>& members) {
  WorkerId best = kNoWorker;
  uint64_t best_weight = 0;
  for (WorkerId w : members) {
    const uint64_t weight = RendezvousWeight(shard, w);
    // Strict > with ascending iteration = smaller id wins ties.
    if (best == kNoWorker || weight > best_weight) {
      best = w;
      best_weight = weight;
    }
  }
  return best;
}

void OwnershipDirectory::Reassign(const std::vector<WorkerId>& members,
                                  std::vector<ShardMove>* moves) {
  for (uint32_t shard = 0; shard < owner_of_.size(); ++shard) {
    const WorkerId next = WinnerOf(shard, members);
    if (next != owner_of_[shard]) {
      moves->push_back(ShardMove{shard, owner_of_[shard], next});
      owner_of_[shard] = next;
    }
  }
}

spa::Result<HandoffPlan> OwnershipDirectory::AddWorker(WorkerId worker) {
  if (worker == kNoWorker) {
    return spa::Status::InvalidArgument(
        "worker id is the kNoWorker sentinel");
  }
  std::unique_lock lock(mu_);
  auto it = std::lower_bound(members_.begin(), members_.end(), worker);
  if (it != members_.end() && *it == worker) {
    return spa::Status::AlreadyExists("worker already a member");
  }
  members_.insert(it, worker);
  HandoffPlan plan;
  plan.directory_version = ++version_;
  Reassign(members_, &plan.moves);
  return plan;
}

spa::Result<HandoffPlan> OwnershipDirectory::RemoveWorker(
    WorkerId worker) {
  std::unique_lock lock(mu_);
  auto it = std::lower_bound(members_.begin(), members_.end(), worker);
  if (it == members_.end() || *it != worker) {
    return spa::Status::NotFound("worker is not a member");
  }
  members_.erase(it);
  HandoffPlan plan;
  plan.directory_version = ++version_;
  Reassign(members_, &plan.moves);
  return plan;
}

uint32_t OwnershipDirectory::ShardOf(UserId user) const {
  return static_cast<uint32_t>(SplitMix64(static_cast<uint64_t>(user)) %
                               config_.virtual_shards);
}

WorkerId OwnershipDirectory::OwnerOf(UserId user) const {
  return OwnerOfShard(ShardOf(user));
}

WorkerId OwnershipDirectory::OwnerOfShard(uint32_t shard) const {
  SPA_CHECK_MSG(shard < config_.virtual_shards,
                "shard outside the directory ring");
  std::shared_lock lock(mu_);
  return owner_of_[shard];
}

std::vector<WorkerId> OwnershipDirectory::workers() const {
  std::shared_lock lock(mu_);
  return members_;
}

size_t OwnershipDirectory::worker_count() const {
  std::shared_lock lock(mu_);
  return members_.size();
}

std::vector<uint32_t> OwnershipDirectory::ShardsOwnedBy(
    WorkerId worker) const {
  std::shared_lock lock(mu_);
  std::vector<uint32_t> owned;
  for (uint32_t shard = 0; shard < owner_of_.size(); ++shard) {
    if (owner_of_[shard] == worker) owned.push_back(shard);
  }
  return owned;
}

uint64_t OwnershipDirectory::version() const {
  std::shared_lock lock(mu_);
  return version_;
}

}  // namespace spa::recsys
