#ifndef SPA_RECSYS_ROUTER_SERVING_ROUTER_H_
#define SPA_RECSYS_ROUTER_SERVING_ROUTER_H_

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <shared_mutex>
#include <utility>
#include <vector>

#include "common/stats.h"
#include "common/status.h"
#include "recsys/engine.h"
#include "recsys/interaction_matrix.h"
#include "recsys/router/ownership_directory.h"
#include "recsys/serving_pipeline.h"
#include "sum/sum_service.h"
#include "sum/sum_update.h"

/// \file
/// The router tier: N in-process worker nodes behind one
/// `ServingRouter`. Each `WorkerNode` is a full serving replica — its
/// own `ShardedInteractionMatrix`, its own `RecsysEngine` (similarity
/// indexes + response cache) and its own `ServingPipeline` queue — and
/// owns a group of the `OwnershipDirectory`'s virtual shards. Reads
/// (`Submit`) are routed to the owner of the requesting user; the
/// in-process nodes are the explicit stepping stone the ROADMAP calls
/// for before multi-process workers, so the router deliberately talks
/// to nodes only through their pipelines (the future RPC seam).
///
/// ## Writer fan-out and the affected-worker rule
///
/// Writes enter through the router and are fanned to exactly the
/// workers whose serving state they affect:
///
///  * **Interaction batches** affect *every* worker: a replica's KNN
///    similarities (and thus its rankings for the users it owns)
///    depend on the global interaction matrix, not just on the owned
///    users' rows. `SubmitInteractions` therefore appends the batch to
///    the router's ordered interaction log and enqueues it on every
///    node's writer lane, in ascending worker order, under the
///    router's exclusive lock — one total order of interaction writes
///    across all replicas. Because every replica applies the same
///    batches in the same order, the `ApplyDeterminismTest` contract
///    (PR 4) makes all replica matrices — bytes, norms, registration
///    order and version counters — identical.
///  * **SUM updates** affect only the owner of the touched user: the
///    emotional-context store is the *shared* versioned `SumService`
///    (emotion re-ranking reads only the requesting user's model, so
///    the service does not need to be replicated), and a publish must
///    apply exactly once. `SubmitSumUpdates` routes the batch to the
///    writer lane of the first touched user's owner.
///
/// Worker pipelines are forced to `BackpressurePolicy::kBlock`:
/// kReject/kShedOldest admission could accept a fanned batch on one
/// replica and drop it on another, silently diverging the replicas.
///
/// ## Membership and deterministic handoff
///
/// `AddWorker` builds a new node by replaying the interaction log
/// (bootstrap + every fanned batch) into a fresh matrix and fitting a
/// fresh engine — bitwise-identical state to the incumbent replicas,
/// by the same determinism contract — then admits it to the directory
/// and returns the `HandoffPlan` (exactly the shards the newcomer
/// won). `RemoveWorker` drains the leaver's pipeline (every admitted
/// ticket completes), redistributes exactly its shards, and refuses to
/// drop the last worker. Both run under the router's exclusive lock,
/// so a membership change is atomic with respect to routing.
///
/// ## Parity contract
///
/// For any routed response pinned at (fit_epoch, matrix_version,
/// sum_version), a single-process engine fitted from the same
/// interaction log and replayed to the same pin serves the
/// byte-identical response. `tests/recsys/router_test.cc` asserts this
/// over randomized interleavings of Submit / ApplyInteractions /
/// SubmitSumUpdates / join / leave, and `bench_serving --smoke` gates
/// it in CI.

namespace spa::recsys {

/// \brief Router tunables.
struct RouterConfig {
  /// Initial worker-node count (>= 1, SPA_CHECK — a router with no
  /// workers could route nothing).
  size_t workers = 2;
  /// User -> worker resolution (virtual shard ring).
  DirectoryConfig directory;
  /// Per-worker engine tunables; every node gets its own engine,
  /// similarity indexes and response cache built from this config.
  /// `interaction_shards` also sizes each node's matrix replica.
  EngineConfig engine;
  /// Per-worker streaming-queue tunables. The backpressure policy is
  /// forced to kBlock (see file comment); `workers` here is the drain
  /// threads *per node* (default 1: node count is the scaling axis).
  PipelineConfig queue;
  /// Assembles one node's recommender stack: AddComponent(...) calls
  /// plus SetItemEmotionProfile(...) registrations. Invoked once per
  /// node (including late joiners) and must build the same stack every
  /// time, or the cross-replica parity contract is void. Must not call
  /// set_sum_service (the router wires the shared service itself).
  std::function<void(RecsysEngine&)> stack_builder;
};

/// \brief One worker node: a full shard-group serving replica.
///
/// Construction replays the router's interaction log into the node's
/// own matrix, builds + fits the node's engine and starts the node's
/// pipeline. Nodes live on the heap and never move (the engine borrows
/// the matrix, the pipeline borrows the engine).
class WorkerNode {
 public:
  WorkerNode(WorkerId id, const RouterConfig& config,
             sum::SumService* sums,
             const std::vector<Interaction>& replay_log);

  WorkerNode(const WorkerNode&) = delete;
  WorkerNode& operator=(const WorkerNode&) = delete;

  WorkerId id() const { return id_; }
  /// Fit outcome; a node that failed to build serves nothing.
  const spa::Status& status() const { return status_; }

  ServingPipeline* pipeline() { return pipeline_.get(); }
  RecsysEngine* engine() { return engine_.get(); }
  const RecsysEngine* engine() const { return engine_.get(); }
  const InteractionMatrix& matrix() const { return matrix_; }

 private:
  WorkerId id_;
  InteractionMatrix matrix_;
  std::unique_ptr<RecsysEngine> engine_;
  std::unique_ptr<ServingPipeline> pipeline_;
  spa::Status status_;
};

/// \brief Aggregate result of one fanned interaction batch: one ticket
/// per affected worker, in ascending worker order.
class FanoutTicket {
 public:
  /// Blocks until every per-worker ticket is terminal.
  void Wait() const;
  /// True when every worker applied the batch (call after Wait).
  bool ok() const;
  /// The post-apply matrix version every worker agreed on (call after
  /// Wait; SPA_CHECK enforces cross-replica agreement — disagreement
  /// means replicas diverged, which the fan-out protocol rules out).
  uint64_t matrix_version() const;

  const std::vector<std::pair<WorkerId, StreamTicketPtr>>& tickets()
      const {
    return tickets_;
  }

 private:
  friend class ServingRouter;
  std::vector<std::pair<WorkerId, StreamTicketPtr>> tickets_;
};

/// \brief Per-worker slice of the router stats.
struct RouterWorkerStats {
  WorkerId worker = 0;
  size_t owned_shards = 0;
  uint64_t matrix_version = 0;
  PipelineStats pipeline;
  EngineCacheStats cache;
  /// This worker's ApplyInteractions counters — the router tier's
  /// view of cache invalidation and hot-set re-warming per replica.
  LiveUpdateStats live_updates;
  /// Per-stage serving latencies of this worker's engine (its drain
  /// workers serve through the staged dataflow; merge the histograms
  /// across workers to aggregate).
  StageStats stages;
};

/// \brief Cumulative router counters plus the per-worker slices.
struct RouterStats {
  uint64_t directory_version = 0;
  uint64_t reads_routed = 0;    ///< Submit calls handed to a worker
  uint64_t writes_fanned = 0;   ///< interaction batches fanned out
  uint64_t sum_routed = 0;      ///< SUM batches routed to an owner
  uint64_t joins = 0;
  uint64_t leaves = 0;
  uint64_t shards_moved = 0;    ///< total ShardMoves across changes
  /// Degrade-tier shed quality summed across workers (see
  /// `PipelineStats::fallback_served` / `expired_drops`).
  uint64_t fallback_served = 0;
  uint64_t expired_drops = 0;
  std::vector<RouterWorkerStats> workers;  ///< ascending by worker id
  /// Per-response end-to-end latency merged across all workers.
  LogHistogram end_to_end;
};

/// \brief Routes requests to owner workers and fans writes to affected
/// workers. Thread-safe.
class ServingRouter {
 public:
  /// Builds `config.workers` nodes from `bootstrap` (the ordered
  /// interaction log all replicas start from) and `sums` (the shared
  /// emotional-context service; borrowed, may be null, must outlive
  /// the router). Errors: InvalidArgument (no stack_builder), or the
  /// first node's Fit error. Worker counts of 0 abort (SPA_CHECK).
  static spa::Result<std::unique_ptr<ServingRouter>> Create(
      RouterConfig config, std::vector<Interaction> bootstrap,
      sum::SumService* sums);

  ~ServingRouter();

  ServingRouter(const ServingRouter&) = delete;
  ServingRouter& operator=(const ServingRouter&) = delete;

  // ---- serving -----------------------------------------------------------
  /// Routes one request to the owner of `request.user`. Errors:
  /// FailedPrecondition (router shut down).
  spa::Result<StreamTicketPtr> Submit(
      RecommendRequest request, StreamTicket::Callback on_complete = {});

  /// Appends the batch to the interaction log and fans it to every
  /// worker's writer lane (all replicas are affected; see file
  /// comment). Errors: FailedPrecondition (shut down).
  spa::Result<FanoutTicket> SubmitInteractions(
      std::vector<Interaction> batch);

  /// Routes the publish to the writer lane of the first touched user's
  /// owner (the only affected worker: the service is shared and a
  /// publish must apply exactly once). Errors: InvalidArgument (empty
  /// batch), FailedPrecondition (shut down or no SUM service).
  spa::Result<StreamTicketPtr> SubmitSumUpdates(
      std::vector<sum::SumUpdate> updates);

  // ---- membership --------------------------------------------------------
  /// Builds a new node from the interaction log, admits it and returns
  /// the handoff plan. Errors: the node's Fit error (the directory is
  /// untouched on failure).
  spa::Result<HandoffPlan> AddWorker();

  /// Drains and retires `worker`, redistributing its shards. Errors:
  /// NotFound (no such worker), FailedPrecondition (last worker).
  spa::Result<HandoffPlan> RemoveWorker(WorkerId worker);

  // ---- control -----------------------------------------------------------
  /// Blocks until every worker's lanes are empty (settles only while
  /// producers are quiet, like ServingPipeline::Flush).
  void Flush();

  /// Stops admission and shuts every worker down. Idempotent; the
  /// destructor calls it.
  void Shutdown();

  // ---- introspection -----------------------------------------------------
  WorkerId OwnerOf(UserId user) const { return directory_.OwnerOf(user); }
  const OwnershipDirectory& directory() const { return directory_; }
  size_t worker_count() const;
  std::vector<WorkerId> worker_ids() const;
  /// Borrowed node view for tests/benches; null for non-members. The
  /// pointer is invalidated by RemoveWorker/Shutdown.
  const WorkerNode* worker(WorkerId id) const;
  /// Interactions in the replay log (bootstrap + fanned batches).
  size_t log_size() const;
  RouterStats stats() const;
  const RouterConfig& config() const { return config_; }

 private:
  explicit ServingRouter(RouterConfig config,
                         std::vector<Interaction> bootstrap,
                         sum::SumService* sums);

  /// Builds a node from the current log; called with mu_ exclusive.
  std::unique_ptr<WorkerNode> BuildNode(WorkerId id) const;

  RouterConfig config_;
  sum::SumService* sums_;
  OwnershipDirectory directory_;

  /// Guards nodes_, log_ and stopping_. Reads route under the shared
  /// side; writer fan-out and membership changes take the exclusive
  /// side (one total order of interaction writes).
  mutable std::shared_mutex mu_;
  std::map<WorkerId, std::unique_ptr<WorkerNode>> nodes_;
  /// The ordered interaction history: bootstrap + every fanned batch.
  /// Joining nodes replay it to reach bitwise-identical state.
  std::vector<Interaction> log_;
  WorkerId next_worker_ = 0;
  bool stopping_ = false;

  std::atomic<uint64_t> reads_routed_{0};
  std::atomic<uint64_t> writes_fanned_{0};
  std::atomic<uint64_t> sum_routed_{0};
  std::atomic<uint64_t> joins_{0};
  std::atomic<uint64_t> leaves_{0};
  std::atomic<uint64_t> shards_moved_{0};
};

}  // namespace spa::recsys

#endif  // SPA_RECSYS_ROUTER_SERVING_ROUTER_H_
