#ifndef SPA_RECSYS_ROUTER_OWNERSHIP_DIRECTORY_H_
#define SPA_RECSYS_ROUTER_OWNERSHIP_DIRECTORY_H_

#include <cstdint>
#include <shared_mutex>
#include <vector>

#include "common/status.h"
#include "recsys/interaction_matrix.h"

/// \file
/// The "who owns user X" component of the router tier. Users are first
/// folded onto a fixed ring of *virtual shards* (`SplitMix64(user) %
/// virtual_shards` — the same mix every other shard route in the
/// codebase uses, so the mapping is identical across processes and
/// platforms; see the golden-value contract in
/// `tests/common/hash_test.cc`), and each virtual shard is assigned to
/// one worker by rendezvous (highest-random-weight) hashing over the
/// current member set.
///
/// Why rendezvous instead of `shard % workers`: the assignment is a
/// pure function of (shard, member set), so
///  * every instance that has seen the same membership history — in
///    fact, merely the same current membership — computes the same
///    table, with no state to replicate;
///  * a worker joining steals only the shards it now wins (about
///    1/(N+1) of the ring) and a worker leaving redistributes only its
///    own shards; no unrelated shard ever moves. `AddWorker` /
///    `RemoveWorker` return the exact `HandoffPlan` so the router can
///    hand shard groups over deterministically.
///
/// The directory is membership + arithmetic only: it knows nothing
/// about matrices or engines. Thread-safe (readers take a shared lock;
/// membership changes the exclusive side).

namespace spa::recsys {

/// Stable identity of one worker node. Ids are never reused within a
/// router's lifetime, so a plan's `from`/`to` are unambiguous.
using WorkerId = uint32_t;

/// Sentinel for "no worker" (empty membership).
inline constexpr WorkerId kNoWorker = static_cast<WorkerId>(-1);

/// \brief Directory tunables.
struct DirectoryConfig {
  /// Virtual shards on the ring. More shards = smoother balance and
  /// finer-grained handoff; the table is one WorkerId per shard, so
  /// there is no reason to be stingy. Must be >= 1 (SPA_CHECK).
  size_t virtual_shards = 128;
};

/// \brief One shard changing hands in a membership change.
struct ShardMove {
  uint32_t shard = 0;
  WorkerId from = kNoWorker;  ///< kNoWorker on first assignment
  WorkerId to = kNoWorker;    ///< kNoWorker when membership empties
};

/// \brief The deterministic delta of one AddWorker/RemoveWorker.
struct HandoffPlan {
  /// Directory version after the change (bumped once per change).
  uint64_t directory_version = 0;
  /// Every shard whose owner changed, ascending by shard.
  std::vector<ShardMove> moves;
};

/// \brief Consistent user -> worker resolution under membership churn.
class OwnershipDirectory {
 public:
  explicit OwnershipDirectory(DirectoryConfig config = {});

  OwnershipDirectory(const OwnershipDirectory&) = delete;
  OwnershipDirectory& operator=(const OwnershipDirectory&) = delete;

  // ---- membership --------------------------------------------------------
  /// Admits `worker` and reassigns exactly the shards it wins. Errors:
  /// AlreadyExists (member), InvalidArgument (kNoWorker).
  spa::Result<HandoffPlan> AddWorker(WorkerId worker);

  /// Retires `worker` and redistributes exactly its shards among the
  /// remaining members. Errors: NotFound (not a member).
  spa::Result<HandoffPlan> RemoveWorker(WorkerId worker);

  // ---- resolution --------------------------------------------------------
  /// The virtual shard `user` folds onto. Pure arithmetic; identical
  /// across every directory built with the same `virtual_shards`.
  uint32_t ShardOf(UserId user) const;

  /// The worker owning `user` (kNoWorker with empty membership).
  WorkerId OwnerOf(UserId user) const;

  /// The worker owning a virtual shard (kNoWorker when empty).
  WorkerId OwnerOfShard(uint32_t shard) const;

  // ---- introspection -----------------------------------------------------
  /// Current members, ascending.
  std::vector<WorkerId> workers() const;
  size_t worker_count() const;
  /// Shards owned by `worker`, ascending (empty for non-members).
  std::vector<uint32_t> ShardsOwnedBy(WorkerId worker) const;
  /// Monotonic membership-change counter (0 = never changed).
  uint64_t version() const;
  const DirectoryConfig& config() const { return config_; }

  /// The rendezvous weight of (shard, worker) — exposed so tests can
  /// pin the assignment arithmetic itself, not just its consequences.
  static uint64_t RendezvousWeight(uint32_t shard, WorkerId worker);

 private:
  /// Owner of `shard` under `members` (ascending): the member with the
  /// highest rendezvous weight, smaller id on ties. Pure function.
  static WorkerId WinnerOf(uint32_t shard,
                           const std::vector<WorkerId>& members);

  /// Recomputes the whole table for `members` and appends every owner
  /// change to `moves`.
  void Reassign(const std::vector<WorkerId>& members,
                std::vector<ShardMove>* moves);

  DirectoryConfig config_;

  mutable std::shared_mutex mu_;
  std::vector<WorkerId> members_;       ///< ascending
  std::vector<WorkerId> owner_of_;      ///< shard -> worker
  uint64_t version_ = 0;
};

}  // namespace spa::recsys

#endif  // SPA_RECSYS_ROUTER_OWNERSHIP_DIRECTORY_H_
