#include "recsys/popularity.h"

#include <chrono>

#include "common/clock.h"

namespace spa::recsys {

spa::Status PopularityRecommender::Fit(const InteractionMatrix& matrix) {
  matrix_ = &matrix;
  total_.clear();
  total_.reserve(matrix.item_count());
  for (ItemId item : matrix.items()) {
    double total = 0.0;
    for (const auto& [user, w] : matrix.UsersOf(item)) total += w;
    total_[item] = total;
  }
  synced_version_ = matrix.version();
  Rank();
  return spa::Status::OK();
}

spa::Status PopularityRecommender::Refresh(RefreshOutcome* outcome) {
  if (matrix_ == nullptr) {
    return spa::Status::FailedPrecondition(
        "Popularity not fitted; nothing to refresh");
  }
  outcome->all_users = true;
  if (matrix_->version() == synced_version_) return spa::Status::OK();
  const auto start = std::chrono::steady_clock::now();
  const std::vector<ItemId> dirty =
      matrix_->ItemsTouchedSince(synced_version_);
  for (const ItemId item : dirty) {
    double total = 0.0;
    for (const auto& [user, w] : matrix_->UsersOf(item)) total += w;
    total_[item] = total;
  }
  synced_version_ = matrix_->version();
  Rank();
  outcome->rows_refreshed += dirty.size();
  outcome->seconds += SecondsSince(start);
  return spa::Status::OK();
}

void PopularityRecommender::Rank() {
  ranked_.clear();
  ranked_.reserve(matrix_->item_count());
  for (ItemId item : matrix_->items()) {
    ranked_.push_back({item, total_.at(item)});
  }
  SortAndTruncate(&ranked_, ranked_.size());
}

std::vector<Scored> PopularityRecommender::RecommendCandidates(
    const CandidateQuery& query) const {
  std::vector<Scored> out;
  if (matrix_ == nullptr) return out;
  for (const Scored& candidate : ranked_) {
    if (out.size() >= query.k) break;
    if (query.Admits(matrix_, candidate.item)) out.push_back(candidate);
  }
  return out;
}

}  // namespace spa::recsys
