#include "recsys/popularity.h"

namespace spa::recsys {

spa::Status PopularityRecommender::Fit(const InteractionMatrix& matrix) {
  matrix_ = &matrix;
  ranked_.clear();
  ranked_.reserve(matrix.item_count());
  for (ItemId item : matrix.items()) {
    double total = 0.0;
    for (const auto& [user, w] : matrix.UsersOf(item)) total += w;
    ranked_.push_back({item, total});
  }
  SortAndTruncate(&ranked_, ranked_.size());
  return spa::Status::OK();
}

std::vector<Scored> PopularityRecommender::RecommendCandidates(
    const CandidateQuery& query) const {
  std::vector<Scored> out;
  if (matrix_ == nullptr) return out;
  for (const Scored& candidate : ranked_) {
    if (out.size() >= query.k) break;
    if (query.Admits(matrix_, candidate.item)) out.push_back(candidate);
  }
  return out;
}

}  // namespace spa::recsys
