#ifndef SPA_RECSYS_SERVING_PIPELINE_H_
#define SPA_RECSYS_SERVING_PIPELINE_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "common/stats.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "recsys/engine.h"
#include "sum/sum_update.h"

/// \file
/// Async streaming serving on top of `RecsysEngine`: callers `Submit`
/// requests and get back a `StreamTicket` they can `Poll`, `Wait` on,
/// or attach a completion callback to, instead of blocking on a closed
/// `RecommendBatch`. A bounded admission queue with a configurable
/// backpressure policy (block / reject-with-status / shed-oldest)
/// feeds worker threads hosted on a `common/thread_pool`; each worker
/// drains a run of queued requests as one micro-batch served through
/// the engine's staged dataflow (`RecsysEngine::RecommendBatchStaged`;
/// `PipelineConfig::staged = false` falls back to the fused
/// `RecommendBatchInline`), so every drained batch pins exactly one
/// SUM snapshot and one interaction-matrix version — the same
/// consistency contract `RecommendBatch` gives a closed batch — and
/// concurrent drain workers overlap their stages across micro-batches.
///
/// ## Writer lane
///
/// Live updates flow through the *same* pipeline: `SubmitInteractions`
/// (interaction batches, executed as `RecsysEngine::ApplyInteractions`)
/// and `SubmitSumUpdates` (emotional-context publishes, executed as
/// `SumService::ApplyAll`) enter a separate bounded writer queue.
/// Workers drain the writer lane *first* (admission-level writer
/// priority, mirroring the engine's `WriterPriorityMutex` — continuous
/// read traffic must not starve updates), exactly one write executes
/// at a time, and writes apply in submission order. Inside the engine
/// the write takes the exclusive side of the serve lock while read
/// micro-batches hold the shared side, so updates and serving
/// interleave without any external locking — and without ever tearing
/// a micro-batch's pinned view.
///
/// ## Determinism contract
///
/// Every completed response reports the `BatchPin` its micro-batch
/// served against. Because writes are serialized FIFO and each batch
/// pins (matrix version, SUM version) atomically under the shared
/// serve lock, replaying the same writes synchronously and serving the
/// same request at the same pin reproduces the streamed response
/// byte-for-byte (`RecommendBatch` parity). The randomized
/// differential harness in `tests/recsys/serving_pipeline_test.cc`
/// asserts exactly this over interleaved schedules.
///
/// ## Response cache
///
/// The pipeline adds no caching layer of its own: micro-batches go
/// through the engine's response cache (hits are byte-identical to
/// recomputes by the cache's version guards), and writer-lane
/// `ApplyInteractions` invalidates affected users' entries exactly as
/// in the synchronous path — which also *re-warms* hot invalidated
/// users into the cache before the writer releases the engine's
/// exclusive lock, so a hot user's first post-apply read is a hit
/// (see `RecsysEngine` docs). Shed or rejected requests never touch
/// the cache.
///
/// ## Deadline-aware degradation (`kDegrade`)
///
/// Under `BackpressurePolicy::kDegrade` read requests carry a
/// deadline (per-Submit, or `PipelineConfig::default_deadline_seconds`
/// when unset; writes never carry one). Overload then sheds by
/// *remaining slack* instead of queue position:
///
///  * **Admission**: when the read lane is full, the op with the least
///    remaining slack — the incoming one or a queued one — is removed.
///    If its deadline already passed it is dropped (ResourceExhausted,
///    `expired_drops`); otherwise it is answered immediately on the
///    submitting thread from the engine's popularity fallback tier
///    (`fallback_served`), flagged `degraded = true` in the response.
///  * **Drain**: each dequeued op is classified before burning engine
///    time — already expired → dropped; too little slack for a full
///    serve (an EWMA of recent per-request serve time) → fallback tier;
///    otherwise → full serve. So under 2x-capacity overload p99 stays
///    bounded near the deadline: nothing full-serves past it.
///
/// Degraded responses are the only non-bitwise responses the pipeline
/// can produce. They are deterministic against
/// `RecsysEngine::RecommendFallback` at their pin, which is what the
/// randomized overload harness replays them against; fallback serves
/// count as `responses` and record both latency histograms, drops
/// record neither. The writer lane treats `kDegrade` as
/// `kShedOldest`, and the other three policies ignore deadlines
/// entirely.
///
/// Lifetime: the engine and SUM service must outlive the pipeline;
/// destroying the pipeline drains every already-admitted op (tickets
/// complete), then stops the workers.

namespace spa::recsys {

/// \brief What `Submit` does when the admission queue is full.
enum class BackpressurePolicy {
  /// Block the submitting thread until the queue has room (closed-loop
  /// producers; no request is ever lost).
  kBlock,
  /// Fail the submission with ResourceExhausted (the caller sees the
  /// overload immediately and can retry or degrade).
  kReject,
  /// Admit the new op and complete the *oldest* queued op of the same
  /// lane as shed (load-shedding: freshest traffic wins; the shed
  /// ticket terminates with state kShed, and its completion callback
  /// fires on the submitting thread that displaced it).
  kShedOldest,
  /// Deadline-aware graceful degradation: shed the read with the least
  /// remaining slack, serving it from the popularity fallback tier
  /// (flagged `degraded`) when its deadline still allows, dropping it
  /// only when already expired. The drain loop additionally
  /// classifies each dequeued read by slack vs. an EWMA serve-time
  /// estimate. Writer-lane overflow behaves as kShedOldest. See the
  /// file doc's "Deadline-aware degradation" section.
  kDegrade,
};

/// \brief Pipeline tunables.
struct PipelineConfig {
  /// Worker threads draining the queues (0 = hardware concurrency).
  size_t workers = 0;
  /// Read-lane admission bound (queued, not yet draining).
  size_t queue_capacity = 1024;
  /// Writer-lane admission bound.
  size_t writer_queue_capacity = 256;
  BackpressurePolicy policy = BackpressurePolicy::kBlock;
  /// Max requests drained into one micro-batch (one pinned snapshot).
  size_t max_batch = 32;
  /// Drain micro-batches through the engine's explicit staged
  /// dataflow (`RecommendBatchStaged`: admit → candidates → blend →
  /// rerank → explain, stage-major) instead of the fused
  /// `RecommendBatchInline`. Byte-identical responses either way at
  /// the same `BatchPin` — the differential harness runs every
  /// schedule against both claims; staged additionally feeds the
  /// engine profiler's per-stage items.
  bool staged = true;
  /// Deadline stamped on reads submitted without an explicit one,
  /// seconds from admission (kDegrade only; 0 = no deadline — such
  /// reads never expire and never degrade, but can still be the
  /// shed victim when everything queued has infinite slack).
  double default_deadline_seconds = 0.0;
};

/// \brief What kind of op a ticket tracks.
enum class StreamOpKind { kRecommend, kInteractions, kSumUpdates };

/// \brief Ticket lifecycle. kDone and kShed are terminal.
enum class TicketState { kQueued, kServing, kDone, kShed };

/// \brief Caller's handle to one submitted op.
///
/// Thread-safe; hold the `StreamTicketPtr` until the result has been
/// read. Accessors that return results must only be called once the
/// ticket is terminal (`Poll()` true / after `Wait()`).
class StreamTicket {
 public:
  using Callback = std::function<void(const StreamTicket&)>;

  StreamOpKind kind() const { return kind_; }

  /// True when the ticket reached a terminal state. Non-blocking.
  bool Poll() const;

  /// Blocks until terminal; returns the terminal state.
  TicketState Wait() const;

  TicketState state() const;

  /// The response (kind() == kRecommend; terminal). Shed tickets carry
  /// a ResourceExhausted status.
  const spa::Result<RecommendResponse>& response() const;

  /// The live-update report (kind() == kInteractions; terminal).
  const spa::Result<LiveUpdateReport>& update_report() const;

  /// The publish status (kind() == kSumUpdates; terminal).
  const spa::Status& sum_status() const;

  /// The consistency point the op was served at: for reads the
  /// micro-batch's pin; for writes the post-apply versions. Zeros for
  /// shed tickets.
  const BatchPin& pinned() const;

  /// Seconds between admission and dequeue / dequeue and completion.
  double queue_seconds() const;
  double serve_seconds() const;

 private:
  friend class ServingPipeline;

  explicit StreamTicket(StreamOpKind kind) : kind_(kind) {}

  /// Publishes the terminal state, wakes waiters, then fires the
  /// completion callback (outside the ticket lock; the callback may
  /// inspect the ticket and re-submit, but it runs on a drain worker —
  /// or, for tickets shed by kShedOldest, on the thread whose Submit
  /// displaced them: it must not block for long and must not call
  /// Flush/Shutdown, which wait on the very worker running it).
  void Complete(TicketState terminal);

  mutable std::mutex mu_;
  mutable std::condition_variable cv_;
  StreamOpKind kind_;
  TicketState state_ = TicketState::kQueued;
  spa::Result<RecommendResponse> response_{
      spa::Status::Internal("pending")};
  spa::Result<LiveUpdateReport> update_report_{
      spa::Status::Internal("pending")};
  spa::Status sum_status_ = spa::Status::Internal("pending");
  BatchPin pinned_;
  double queue_seconds_ = 0.0;
  double serve_seconds_ = 0.0;
  Callback on_complete_;
  std::chrono::steady_clock::time_point submitted_at_;
};

using StreamTicketPtr = std::shared_ptr<StreamTicket>;

/// \brief Cumulative pipeline counters plus latency histograms
/// (`spa::LogHistogram`, seconds; same geometry as the engine's stage
/// histograms, so the two layers merge bucket-by-bucket).
struct PipelineStats {
  uint64_t submitted = 0;   ///< Submit* calls (admitted or not)
  uint64_t admitted = 0;    ///< ops that entered a queue
  uint64_t rejected = 0;    ///< kReject refusals (both lanes)
  uint64_t shed = 0;        ///< kShedOldest drops (both lanes)
  /// Per-lane breakouts of the admission-control counters (the totals
  /// above stay, as the sum): overload diagnosis needs to see *which*
  /// lane the policy is refusing — a shed read is degraded service, a
  /// shed write is lost state.
  uint64_t rejected_reads = 0;
  uint64_t rejected_writes = 0;
  uint64_t shed_reads = 0;
  uint64_t shed_writes = 0;
  uint64_t responses = 0;   ///< completed read tickets
  uint64_t batches = 0;     ///< micro-batches drained
  uint64_t updates_applied = 0;  ///< completed writer-lane ops
  /// kDegrade shed quality: reads answered from the popularity
  /// fallback tier (these ARE responses — flagged `degraded`, both
  /// latency histograms recorded) vs. reads dropped because their
  /// deadline had already expired (a subset of `shed_reads`; no
  /// histograms).
  uint64_t fallback_served = 0;
  uint64_t expired_drops = 0;
  uint64_t max_queue_depth = 0;         ///< high-water mark, read lane
  uint64_t max_writer_queue_depth = 0;  ///< high-water mark, writer lane
  /// CPU seconds this pipeline's workers spent inside the engine
  /// serving read micro-batches / applying writer-lane ops (thread
  /// CPU clock, so co-runner time-slicing on an oversubscribed host
  /// is excluded; falls back to wall where thread CPU clocks are
  /// unavailable). The replica-utilization number capacity math
  /// needs: on a host with a core per worker node, aggregate
  /// deployment throughput is bound by the busiest replica's busy
  /// time, even when the bench host itself is core-starved and
  /// wall-clock throughput cannot show the scaling.
  double serve_busy_seconds = 0.0;
  double update_busy_seconds = 0.0;
  LogHistogram queue_wait;   ///< per op: admission -> dequeue
  LogHistogram batch_serve;  ///< per micro-batch: engine serve wall
  LogHistogram update_apply; ///< per writer op: apply wall
  LogHistogram end_to_end;   ///< per response: admission -> done
};

/// \brief The async streaming front of a fitted `RecsysEngine`.
class ServingPipeline {
 public:
  /// `engine` serves reads and interaction writes; `sums` (may be
  /// null) backs `SubmitSumUpdates` and should be the same service the
  /// engine serves emotional context from. Both are borrowed and must
  /// outlive the pipeline. Workers start immediately.
  ServingPipeline(RecsysEngine* engine, sum::SumService* sums,
                  PipelineConfig config = {});
  ~ServingPipeline();

  ServingPipeline(const ServingPipeline&) = delete;
  ServingPipeline& operator=(const ServingPipeline&) = delete;

  /// Admits one recommendation request. Errors: ResourceExhausted
  /// (kReject and the read lane is full), FailedPrecondition (pipeline
  /// shut down). Under kDegrade the request carries
  /// `config.default_deadline_seconds`; a returned ticket may already
  /// be terminal (degraded-served or dropped at admission).
  spa::Result<StreamTicketPtr> Submit(
      RecommendRequest request, StreamTicket::Callback on_complete = {});

  /// Same, with an explicit deadline (seconds from now; <= 0 means no
  /// deadline). Deadlines only influence serving under kDegrade — the
  /// other policies admit and serve such requests unchanged.
  spa::Result<StreamTicketPtr> SubmitWithDeadline(
      RecommendRequest request, double deadline_seconds,
      StreamTicket::Callback on_complete = {});

  /// Admits one interaction batch into the writer lane (executed as
  /// `RecsysEngine::ApplyInteractions`, in submission order).
  spa::Result<StreamTicketPtr> SubmitInteractions(
      std::vector<Interaction> batch,
      StreamTicket::Callback on_complete = {});

  /// Admits one SUM publish into the writer lane (executed as
  /// `SumService::ApplyAll`, in submission order). Errors additionally:
  /// FailedPrecondition when the pipeline was built without a service.
  spa::Result<StreamTicketPtr> SubmitSumUpdates(
      std::vector<sum::SumUpdate> updates,
      StreamTicket::Callback on_complete = {});

  /// Blocks until both lanes are empty and nothing is executing. Only
  /// settles while producers are quiet.
  void Flush();

  /// Stops admission, drains every already-admitted op, joins the
  /// workers. Idempotent; the destructor calls it.
  void Shutdown();

  PipelineStats stats() const;
  size_t queue_depth() const;         ///< read lane, queued only
  size_t writer_queue_depth() const;  ///< writer lane, queued only
  /// Drain workers (0 after Shutdown).
  size_t worker_count() const;

  const PipelineConfig& config() const { return config_; }

 private:
  struct Op {
    StreamTicketPtr ticket;
    RecommendRequest request;                // kRecommend
    std::vector<Interaction> interactions;   // kInteractions
    std::vector<sum::SumUpdate> sum_updates; // kSumUpdates
    /// kDegrade read deadline (meaningless when !has_deadline).
    std::chrono::steady_clock::time_point deadline{};
    bool has_deadline = false;
  };

  spa::Result<StreamTicketPtr> Admit(Op op, bool writer);
  void DrainLoop();
  void ExecuteWrite(Op op);
  /// Serves one dequeued read micro-batch. Under kDegrade ops are
  /// first classified by remaining slack (drop / fallback / full);
  /// fallback and drop outcomes update the pipeline counters
  /// themselves (brief mu_ reacquire). Returns the number of ops
  /// full-served through the engine (0 = no engine batch ran, so the
  /// caller must not count a batch).
  size_t ExecuteReadBatch(std::vector<Op> batch);
  /// Terminal degrade of one read op, off-queue: expired → dropped
  /// (kShed + ResourceExhausted, counted in expired_drops), otherwise
  /// answered from the engine's popularity fallback tier (kDone,
  /// response flagged degraded, counted in fallback_served +
  /// responses). Takes mu_ briefly for the counters; call WITHOUT mu_
  /// held (the ticket callback fires inside).
  void DegradeRead(Op op, std::chrono::steady_clock::time_point now);

  RecsysEngine* engine_;
  sum::SumService* sums_;
  PipelineConfig config_;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;   ///< workers: something to drain
  std::condition_variable space_cv_;  ///< kBlock producers: room freed
  std::condition_variable idle_cv_;   ///< Flush: everything drained
  std::deque<Op> read_queue_;
  std::deque<Op> write_queue_;
  bool writer_inflight_ = false;
  size_t reads_inflight_ = 0;
  bool stopping_ = false;

  // Counters under mu_; histograms are internally atomic.
  uint64_t submitted_ = 0;
  uint64_t admitted_ = 0;
  uint64_t rejected_reads_ = 0;
  uint64_t rejected_writes_ = 0;
  uint64_t shed_reads_ = 0;
  uint64_t shed_writes_ = 0;
  uint64_t responses_ = 0;
  uint64_t batches_ = 0;
  uint64_t updates_applied_ = 0;
  uint64_t fallback_served_ = 0;
  uint64_t expired_drops_ = 0;
  uint64_t max_queue_depth_ = 0;
  uint64_t max_writer_queue_depth_ = 0;
  LogHistogram hist_queue_wait_;
  LogHistogram hist_batch_serve_;
  LogHistogram hist_update_apply_;
  LogHistogram hist_end_to_end_;
  /// Busy-time accumulators in nanoseconds (atomic: recorded outside
  /// mu_ on the serve path, like the histograms).
  std::atomic<uint64_t> serve_busy_nanos_{0};
  std::atomic<uint64_t> update_busy_nanos_{0};
  /// EWMA of full-serve wall time per request, nanoseconds (0 until
  /// the first full batch completes) — the drain-side slack
  /// classifier's estimate of what a full serve would cost.
  std::atomic<uint64_t> serve_estimate_nanos_{0};

  /// Hosts the drain loops (one long-running task per pool worker).
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace spa::recsys

#endif  // SPA_RECSYS_SERVING_PIPELINE_H_
