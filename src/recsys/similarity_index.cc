#include "recsys/similarity_index.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <unordered_set>

#include "common/clock.h"
#include "common/thread_pool.h"

namespace spa::recsys {

namespace {

/// Row sets below this size build/refresh serially under auto
/// threading: spawning a pool costs more than the work itself.
constexpr size_t kAutoSerialThreshold = 512;

size_t ResolveThreads(size_t configured, size_t rows) {
  if (configured != 0) return configured;
  return rows >= kAutoSerialThreshold
             ? std::max<size_t>(std::thread::hardware_concurrency(), 1)
             : 1;
}

/// Computes one row's truncated neighbor list. `RowVec(a)` is the
/// sparse vector a row is compared by (ItemsOf for users, UsersOf for
/// items), `CandVec(o)` inverts one of its keys back to candidate
/// rows, `NormSq(a)` is the matching squared norm. Deterministic for
/// any thread count and shared between build and refresh — the
/// bitwise-parity anchor of the whole index layer.
template <typename Id, typename RowVec, typename CandVec, typename NormSq>
std::vector<typename SimilarityIndex<Id>::Neighbor> BuildRow(
    Id a, const RowVec& row_vec, const CandVec& cand_vec,
    const NormSq& norm_sq, const SimilarityIndexConfig& config) {
  using Neighbor = typename SimilarityIndex<Id>::Neighbor;
  const auto& vec_a = row_vec(a);
  const double norm_a = norm_sq(a);
  // Candidates: rows sharing at least one key with `a`.
  std::unordered_set<Id> candidates;
  for (const auto& [other, w] : vec_a) {
    for (const auto& [b, w2] : cand_vec(other)) {
      if (b != a) candidates.insert(b);
    }
  }
  std::vector<Neighbor> out;
  out.reserve(candidates.size());
  // Hash the row vector once and join every candidate against it —
  // same bits as per-pair SparseCosine (fixed left = row orientation),
  // without rebuilding the hash per candidate.
  using Key = typename std::decay_t<decltype(vec_a)>::value_type::first_type;
  SparseCosineJoiner<Key> joiner;
  joiner.SetLeft(vec_a);
  for (const Id b : candidates) {
    const double sim = joiner.Against(row_vec(b), norm_a, norm_sq(b));
    if (sim >= config.min_similarity) out.push_back({b, sim});
  }
  std::sort(out.begin(), out.end(),
            [](const Neighbor& x, const Neighbor& y) {
              if (x.similarity != y.similarity) {
                return x.similarity > y.similarity;
              }
              return x.id < y.id;
            });
  if (out.size() > config.top_n) out.resize(config.top_n);
  return out;
}

/// Runs `fn(i)` over [0, n), serially or over a fresh pool.
void RunRows(size_t n, size_t threads,
             const std::function<void(size_t)>& fn) {
  if (threads == 1 || n <= 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
  } else {
    ThreadPool pool(threads);
    ParallelFor(&pool, n, fn);
  }
}

/// Shared build skeleton: every row computed independently, so the
/// result is identical for any thread count.
template <typename Id, typename RowVec, typename CandVec, typename NormSq>
SimilarityIndex<Id> BuildIndex(const std::vector<Id>& row_ids,
                               RowVec row_vec, CandVec cand_vec,
                               NormSq norm_sq,
                               const SimilarityIndexConfig& config,
                               uint64_t matrix_version) {
  using Neighbor = typename SimilarityIndex<Id>::Neighbor;
  const auto start = std::chrono::steady_clock::now();
  const size_t n = row_ids.size();
  const size_t threads = ResolveThreads(config.build_threads, n);

  std::vector<std::vector<Neighbor>> rows(n);
  RunRows(n, threads, [&](size_t i) {
    rows[i] = BuildRow(row_ids[i], row_vec, cand_vec, norm_sq, config);
  });

  std::unordered_map<Id, size_t> row_of;
  row_of.reserve(n);
  for (size_t i = 0; i < n; ++i) row_of.emplace(row_ids[i], i);

  SimilarityIndexStats stats;
  stats.rows = n;
  stats.memory_bytes =
      row_of.size() * (sizeof(std::pair<Id, size_t>) + 2 * sizeof(void*)) +
      rows.capacity() * sizeof(std::vector<Neighbor>);
  for (const auto& row : rows) {
    stats.entries += row.size();
    stats.memory_bytes += row.capacity() * sizeof(Neighbor);
  }
  stats.build_threads = threads;
  stats.matrix_version = matrix_version;
  stats.build_seconds = SecondsSince(start);
  return SimilarityIndex<Id>(std::move(row_of), std::move(rows), config,
                             stats);
}

/// Shared refresh skeleton. `dirty` holds the rows the matrix reports
/// as mutated since the index's version stamp; the affected set adds
/// every row sharing a key with a dirty row (their stored similarities
/// involve a mutated vector). Rows outside the set cannot change, so
/// rebuilding the set in place is bitwise-equal to a full rebuild.
template <typename Id, typename RowVec, typename CandVec, typename NormSq,
          typename FullRebuild>
SimilarityRefreshReport<Id> RefreshIndex(
    SimilarityIndex<Id>* index, std::vector<Id> dirty, size_t total_rows,
    RowVec row_vec, CandVec cand_vec, NormSq norm_sq,
    uint64_t matrix_version, const FullRebuild& full_rebuild) {
  using Neighbor = typename SimilarityIndex<Id>::Neighbor;
  SimilarityRefreshReport<Id> report;
  if (dirty.empty()) return report;  // already in sync
  const auto start = std::chrono::steady_clock::now();
  const SimilarityIndexConfig config = index->config();

  report.refreshed = true;
  report.dirty_rows = dirty.size();

  std::unordered_set<Id> affected(dirty.begin(), dirty.end());
  for (const Id d : dirty) {
    for (const auto& [other, w] : row_vec(d)) {
      for (const auto& [b, w2] : cand_vec(other)) affected.insert(b);
    }
  }

  if (static_cast<double>(affected.size()) >
      config.full_rebuild_fraction * static_cast<double>(total_rows)) {
    index->AdoptRebuild(full_rebuild());
    report.full_rebuild = true;
    report.seconds = SecondsSince(start);
    index->CommitRefresh(matrix_version, total_rows,
                         /*full_rebuild=*/true, report.seconds);
    return report;
  }

  std::vector<Id> rows(affected.begin(), affected.end());
  std::sort(rows.begin(), rows.end());
  const size_t threads =
      ResolveThreads(config.build_threads, rows.size());
  std::vector<std::vector<Neighbor>> rebuilt(rows.size());
  RunRows(rows.size(), threads, [&](size_t i) {
    rebuilt[i] = BuildRow(rows[i], row_vec, cand_vec, norm_sq, config);
  });
  for (size_t i = 0; i < rows.size(); ++i) {
    index->ReplaceRow(rows[i], std::move(rebuilt[i]));
  }
  report.rows = std::move(rows);
  report.seconds = SecondsSince(start);
  index->CommitRefresh(matrix_version, report.rows.size(),
                       /*full_rebuild=*/false, report.seconds);
  return report;
}

}  // namespace

SimilarityIndex<UserId> BuildUserSimilarityIndex(
    const InteractionMatrix& matrix,
    const SimilarityIndexConfig& config) {
  return BuildIndex<UserId>(
      matrix.users(),
      [&matrix](UserId u) -> const auto& { return matrix.ItemsOf(u); },
      [&matrix](ItemId i) -> const auto& { return matrix.UsersOf(i); },
      [&matrix](UserId u) { return matrix.UserNormSquared(u); }, config,
      matrix.version());
}

SimilarityIndex<ItemId> BuildItemSimilarityIndex(
    const InteractionMatrix& matrix,
    const SimilarityIndexConfig& config) {
  return BuildIndex<ItemId>(
      matrix.items(),
      [&matrix](ItemId i) -> const auto& { return matrix.UsersOf(i); },
      [&matrix](UserId u) -> const auto& { return matrix.ItemsOf(u); },
      [&matrix](ItemId i) { return matrix.ItemNormSquared(i); }, config,
      matrix.version());
}

SimilarityRefreshReport<UserId> RefreshUserSimilarityIndex(
    SimilarityIndex<UserId>* index, const InteractionMatrix& matrix) {
  return RefreshIndex<UserId>(
      index, matrix.UsersTouchedSince(index->built_version()),
      matrix.user_count(),
      [&matrix](UserId u) -> const auto& { return matrix.ItemsOf(u); },
      [&matrix](ItemId i) -> const auto& { return matrix.UsersOf(i); },
      [&matrix](UserId u) { return matrix.UserNormSquared(u); },
      matrix.version(), [&matrix, index] {
        return BuildUserSimilarityIndex(matrix, index->config());
      });
}

SimilarityRefreshReport<ItemId> RefreshItemSimilarityIndex(
    SimilarityIndex<ItemId>* index, const InteractionMatrix& matrix) {
  return RefreshIndex<ItemId>(
      index, matrix.ItemsTouchedSince(index->built_version()),
      matrix.item_count(),
      [&matrix](ItemId i) -> const auto& { return matrix.UsersOf(i); },
      [&matrix](UserId u) -> const auto& { return matrix.ItemsOf(u); },
      [&matrix](ItemId i) { return matrix.ItemNormSquared(i); },
      matrix.version(), [&matrix, index] {
        return BuildItemSimilarityIndex(matrix, index->config());
      });
}

}  // namespace spa::recsys
