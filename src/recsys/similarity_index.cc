#include "recsys/similarity_index.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <unordered_set>

#include "common/thread_pool.h"

namespace spa::recsys {

namespace {

/// Matrices below this many rows build serially under auto threading:
/// spawning a pool costs more than the build itself.
constexpr size_t kAutoSerialThreshold = 512;

/// Shared build skeleton. `RowVec(a)` is the sparse vector a row is
/// compared by (ItemsOf for users, UsersOf for items), `CandVec(o)`
/// inverts one of its keys back to candidate rows, `NormSq(a)` is the
/// matching squared norm. Every row is computed independently and
/// deterministically, so the result is identical for any thread count.
template <typename Id, typename RowVec, typename CandVec, typename NormSq>
SimilarityIndex<Id> BuildIndex(const std::vector<Id>& row_ids,
                               RowVec row_vec, CandVec cand_vec,
                               NormSq norm_sq,
                               const SimilarityIndexConfig& config,
                               uint64_t matrix_version) {
  using Neighbor = typename SimilarityIndex<Id>::Neighbor;
  const auto start = std::chrono::steady_clock::now();
  const size_t n = row_ids.size();

  size_t threads = config.build_threads;
  if (threads == 0) {
    threads = n >= kAutoSerialThreshold
                  ? std::max<size_t>(std::thread::hardware_concurrency(), 1)
                  : 1;
  }

  std::vector<std::vector<Neighbor>> rows(n);
  auto build_row = [&](size_t i) {
    const Id a = row_ids[i];
    const auto& vec_a = row_vec(a);
    const double norm_a = norm_sq(a);
    // Candidates: rows sharing at least one key with `a`.
    std::unordered_set<Id> candidates;
    for (const auto& [other, w] : vec_a) {
      for (const auto& [b, w2] : cand_vec(other)) {
        if (b != a) candidates.insert(b);
      }
    }
    std::vector<Neighbor>& out = rows[i];
    out.reserve(candidates.size());
    for (const Id b : candidates) {
      const double sim =
          SparseCosine(vec_a, row_vec(b), norm_a, norm_sq(b));
      if (sim >= config.min_similarity) out.push_back({b, sim});
    }
    std::sort(out.begin(), out.end(),
              [](const Neighbor& x, const Neighbor& y) {
                if (x.similarity != y.similarity) {
                  return x.similarity > y.similarity;
                }
                return x.id < y.id;
              });
    if (out.size() > config.top_n) out.resize(config.top_n);
  };
  if (threads == 1) {
    for (size_t i = 0; i < n; ++i) build_row(i);
  } else {
    ThreadPool pool(threads);
    ParallelFor(&pool, n, build_row);
  }

  // Assemble the CSR arrays (sequential; cheap relative to the sims).
  std::unordered_map<Id, size_t> row_of;
  row_of.reserve(n);
  std::vector<size_t> offsets;
  offsets.reserve(n + 1);
  offsets.push_back(0);
  size_t entries = 0;
  for (const auto& row : rows) entries += row.size();
  std::vector<Neighbor> neighbors;
  neighbors.reserve(entries);
  for (size_t i = 0; i < n; ++i) {
    row_of.emplace(row_ids[i], i);
    neighbors.insert(neighbors.end(), rows[i].begin(), rows[i].end());
    offsets.push_back(neighbors.size());
  }

  SimilarityIndexStats stats;
  stats.rows = n;
  stats.entries = entries;
  stats.memory_bytes =
      neighbors.capacity() * sizeof(Neighbor) +
      offsets.capacity() * sizeof(size_t) +
      row_of.size() * (sizeof(std::pair<Id, size_t>) + 2 * sizeof(void*));
  stats.build_threads = threads;
  stats.matrix_version = matrix_version;
  stats.build_seconds = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - start)
                            .count();
  return SimilarityIndex<Id>(std::move(row_of), std::move(offsets),
                             std::move(neighbors), stats);
}

}  // namespace

SimilarityIndex<UserId> BuildUserSimilarityIndex(
    const InteractionMatrix& matrix,
    const SimilarityIndexConfig& config) {
  return BuildIndex<UserId>(
      matrix.users(),
      [&matrix](UserId u) -> const auto& { return matrix.ItemsOf(u); },
      [&matrix](ItemId i) -> const auto& { return matrix.UsersOf(i); },
      [&matrix](UserId u) { return matrix.UserNormSquared(u); }, config,
      matrix.version());
}

SimilarityIndex<ItemId> BuildItemSimilarityIndex(
    const InteractionMatrix& matrix,
    const SimilarityIndexConfig& config) {
  return BuildIndex<ItemId>(
      matrix.items(),
      [&matrix](ItemId i) -> const auto& { return matrix.UsersOf(i); },
      [&matrix](UserId u) -> const auto& { return matrix.ItemsOf(u); },
      [&matrix](ItemId i) { return matrix.ItemNormSquared(i); }, config,
      matrix.version());
}

}  // namespace spa::recsys
