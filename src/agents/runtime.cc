#include "agents/runtime.h"

#include "common/check.h"
#include "common/string_util.h"

namespace spa::agents {

AgentContext::AgentContext(AgentRuntime* runtime, std::string self)
    : runtime_(runtime), self_(std::move(self)) {}

void AgentContext::Send(const std::string& to, Payload payload) {
  runtime_->Enqueue(self_, to, std::move(payload));
  ++runtime_->stats_[self_].sent;
}

bool AgentContext::SpawnAgent(std::unique_ptr<Agent> agent) {
  return runtime_->Register(std::move(agent)).ok();
}

spa::TimeMicros AgentContext::now() const {
  return runtime_->clock_->now();
}

AgentRuntime::AgentRuntime(spa::SimClock* clock) : clock_(clock) {
  SPA_CHECK(clock != nullptr);
}

spa::Status AgentRuntime::Register(std::unique_ptr<Agent> agent) {
  SPA_CHECK(agent != nullptr);
  const std::string name = agent->name();
  if (agents_.contains(name)) {
    return spa::Status::AlreadyExists(
        spa::StrFormat("agent '%s' already registered", name.c_str()));
  }
  agents_.emplace(name, std::move(agent));
  names_.push_back(name);
  stats_.emplace(name, AgentStats{});
  return spa::Status::OK();
}

bool AgentRuntime::HasAgent(const std::string& name) const {
  return agents_.contains(name);
}

void AgentRuntime::Inject(const std::string& to, Payload payload) {
  Enqueue("external", to, std::move(payload));
}

void AgentRuntime::Enqueue(const std::string& from, const std::string& to,
                           Payload payload) {
  Envelope envelope;
  envelope.seq = next_seq_++;
  envelope.from = from;
  envelope.to = to;
  envelope.at = clock_->now();
  envelope.payload = std::move(payload);
  queue_.push_back(std::move(envelope));
}

size_t AgentRuntime::RunUntilIdle(size_t max_deliveries) {
  size_t delivered = 0;
  while (!queue_.empty() && delivered < max_deliveries) {
    Envelope envelope = std::move(queue_.front());
    queue_.pop_front();
    const auto it = agents_.find(envelope.to);
    if (it == agents_.end()) {
      ++dropped_;
      continue;
    }
    AgentContext ctx(this, envelope.to);
    ++stats_[envelope.to].delivered;
    it->second->OnMessage(envelope, &ctx);
    ++delivered;
  }
  return delivered;
}

size_t AgentRuntime::TickAll() {
  for (const std::string& name : names_) {
    Inject(name, Tick{clock_->now()});
  }
  return RunUntilIdle();
}

}  // namespace spa::agents
