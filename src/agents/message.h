#ifndef SPA_AGENTS_MESSAGE_H_
#define SPA_AGENTS_MESSAGE_H_

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "common/sim_clock.h"
#include "eit/question_bank.h"
#include "lifelog/event.h"
#include "sum/attribute.h"

/// \file
/// Typed inter-agent messages. The SPA architecture (Fig. 3) is a
/// message-passing multi-agent system; every interaction between the
/// LifeLogs Pre-processor, Attributes Manager, Smart Component and
/// Messaging Agent travels as one of these payloads.

namespace spa::agents {

/// A batch of raw WebLog lines for pre-processing.
struct RawLogBatch {
  std::vector<std::string> lines;
};

/// Pre-processing progress report (emitted by preprocessor replicas).
struct PreprocessReport {
  uint64_t lines_processed = 0;
  uint64_t events_out = 0;
  std::string replica;
};

/// A user answered a Gradual EIT question: activation evidence for the
/// impacted emotional attributes (already consensus-scaled).
struct EitAnswerObserved {
  sum::UserId user = 0;
  int32_t question_id = -1;
  std::vector<eit::AttributeImpact> activations;
};

/// A user reacted (or failed to react) to a recommendation that was
/// argued through `argued_attribute`.
struct InteractionObserved {
  sum::UserId user = 0;
  lifelog::ItemId item = lifelog::kNoItem;
  sum::AttributeId argued_attribute = -1;  ///< -1 when standard message
  bool positive = false;  ///< transaction followed vs. ignored
  double magnitude = 1.0;
};

/// Ask the Messaging Agent to compose a sales talk for (user, course).
struct ComposeMessageRequest {
  sum::UserId user = 0;
  lifelog::ItemId course = lifelog::kNoItem;
  /// Sellable attribute ids of the course, in priority order
  /// (step 1 of §5.3).
  std::vector<sum::AttributeId> product_attributes;
};

/// Which of the paper's Fig. 5 cases produced the message.
enum class MessageCase : uint8_t {
  kStandard = 0,      ///< 3.a: no matching sensibility
  kSingleMatch = 1,   ///< 3.b: exactly one match
  kPriority = 2,      ///< 3.c.i: several, picked by priority
  kMaxSensibility = 3 ///< 3.c.ii: several, picked by max sensibility
};

/// The composed individualized message.
struct ComposedMessage {
  sum::UserId user = 0;
  lifelog::ItemId course = lifelog::kNoItem;
  MessageCase message_case = MessageCase::kStandard;
  sum::AttributeId argued_attribute = -1;
  std::string text;
};

/// Periodic maintenance tick (decay rounds etc.).
struct Tick {
  spa::TimeMicros now = 0;
};

using Payload =
    std::variant<RawLogBatch, PreprocessReport, EitAnswerObserved,
                 InteractionObserved, ComposeMessageRequest,
                 ComposedMessage, Tick>;

/// \brief A routed message.
struct Envelope {
  int64_t seq = 0;          ///< delivery sequence number
  std::string from;
  std::string to;
  spa::TimeMicros at = 0;   ///< simulated send time
  Payload payload;
};

/// Name of the payload alternative (for traces).
std::string_view PayloadName(const Payload& payload);

}  // namespace spa::agents

#endif  // SPA_AGENTS_MESSAGE_H_
