#ifndef SPA_AGENTS_ATTRIBUTES_AGENT_H_
#define SPA_AGENTS_ATTRIBUTES_AGENT_H_

#include "agents/runtime.h"
#include "sum/sum_service.h"

/// \file
/// The Attributes Manager Agent (SPA component 3): creates, extracts,
/// selects and fuses attributes, and "automatically detects the level of
/// sensibility of each user for each of his/her dominant attributes by
/// automatically assigning weights (relevancies)" (§4). Sensibility
/// weights are maintained through the SUM reward/punish mechanism:
/// EIT answers activate emotional attributes, observed reactions to
/// argued messages reinforce or weaken them (Fig. 4).
///
/// The agent never mutates a model directly: every change is described
/// as a `sum::SumUpdate` and applied through the `sum::SumService`, so
/// each observation lands as one atomic versioned publish that serving
/// snapshots (and the engine's response cache) react to precisely.

namespace spa::agents {

struct AttributesAgentConfig {
  /// Decay applied to emotional sensibilities on every Tick (the
  /// decay parameters themselves live in the SumService's
  /// ReinforcementConfig).
  bool decay_on_tick = true;
  /// Consensus score at which an EIT answer is emotionally neutral;
  /// answers above it reward the impacted attributes, answers below it
  /// punish them (disagreeing with the population consensus on an
  /// "enthusiasm" item is evidence of low enthusiasm).
  double eit_neutral_consensus = 0.3;
  /// Gain applied to the signed EIT evidence before reinforcement.
  double eit_gain = 5.0;
};

/// \brief Maintains SUM sensibility weights from the event stream.
class AttributesManagerAgent : public Agent {
 public:
  AttributesManagerAgent(sum::SumService* sums,
                         AttributesAgentConfig config = {});

  void OnMessage(const Envelope& envelope, AgentContext* ctx) override;

  struct Stats {
    uint64_t eit_answers = 0;
    uint64_t reinforcements = 0;
    uint64_t punishments = 0;
    uint64_t decay_rounds = 0;
    uint64_t preprocess_reports = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  void HandleEitAnswer(const EitAnswerObserved& answer);
  void HandleInteraction(const InteractionObserved& interaction);

  sum::SumService* sums_;
  AttributesAgentConfig config_;
  Stats stats_;
};

}  // namespace spa::agents

#endif  // SPA_AGENTS_ATTRIBUTES_AGENT_H_
