#include "agents/preprocessor_agent.h"

#include "common/logging.h"
#include "common/string_util.h"

namespace spa::agents {

namespace {
std::string ReplicaName(size_t index) {
  return spa::StrFormat("preproc-%zu", index);
}
}  // namespace

PreprocessorAgent::PreprocessorAgent(
    const lifelog::ActionCatalog* catalog, lifelog::LifeLogStore* store,
    PreprocessorAgentConfig config)
    : Agent(ReplicaName(0)),
      family_(std::make_shared<Family>(catalog, store, config)),
      index_(0) {}

PreprocessorAgent::PreprocessorAgent(std::shared_ptr<Family> family,
                                     size_t index)
    : Agent(ReplicaName(index)), family_(std::move(family)),
      index_(index) {}

void PreprocessorAgent::OnMessage(const Envelope& envelope,
                                  AgentContext* ctx) {
  if (const auto* batch = std::get_if<RawLogBatch>(&envelope.payload)) {
    HandleBatch(*batch, ctx);
  }
  // Ticks and other payloads are no-ops for the pre-processor.
}

void PreprocessorAgent::HandleBatch(const RawLogBatch& batch,
                                    AgentContext* ctx) {
  Family& family = *family_;
  ++family.stats.batches;

  const size_t capacity = family.config.capacity_per_batch;
  const size_t take = std::min(batch.lines.size(), capacity);

  for (size_t i = 0; i < take; ++i) {
    family.preprocessor.ProcessLine(batch.lines[i], family.store);
  }

  if (take < batch.lines.size()) {
    // Overflow: replicate proactively (up to the cap) and hand the rest
    // of the batch to the next replica in the ring.
    ++family.stats.overflow_handoffs;
    const size_t next = (index_ + 1) % family.config.max_replicas;
    const std::string next_name = ReplicaName(next);
    if (next != 0 && family.stats.replicas < family.config.max_replicas &&
        next >= family.stats.replicas) {
      std::unique_ptr<Agent> replica(
          new PreprocessorAgent(family_, next));
      if (ctx->SpawnAgent(std::move(replica))) {
        ++family.stats.replicas;
        SPA_LOG(Debug) << "preprocessor replicated to "
                       << family.stats.replicas << " replicas";
      }
    }
    RawLogBatch rest;
    rest.lines.assign(batch.lines.begin() + static_cast<long>(take),
                      batch.lines.end());
    ctx->Send(next_name, std::move(rest));
  }

  // Refresh the family-level aggregate from the shared preprocessor.
  family.stats.preprocess = family.preprocessor.stats();

  PreprocessReport report;
  report.lines_processed = take;
  report.events_out = family.preprocessor.stats().events_out;
  report.replica = name();
  ctx->Send("attributes-manager", std::move(report));
}

}  // namespace spa::agents
