#include "agents/attributes_agent.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace spa::agents {

AttributesManagerAgent::AttributesManagerAgent(
    sum::SumStore* sums, AttributesAgentConfig config)
    : Agent("attributes-manager"),
      sums_(sums),
      config_(config),
      updater_(config.reinforcement) {
  SPA_CHECK(sums != nullptr);
}

void AttributesManagerAgent::OnMessage(const Envelope& envelope,
                                       AgentContext* ctx) {
  (void)ctx;
  if (const auto* answer =
          std::get_if<EitAnswerObserved>(&envelope.payload)) {
    HandleEitAnswer(*answer);
  } else if (const auto* interaction =
                 std::get_if<InteractionObserved>(&envelope.payload)) {
    HandleInteraction(*interaction);
  } else if (std::get_if<PreprocessReport>(&envelope.payload) !=
             nullptr) {
    ++stats_.preprocess_reports;
  } else if (std::get_if<Tick>(&envelope.payload) != nullptr) {
    if (config_.decay_on_tick) {
      sums_->ForEach([this](const sum::SmartUserModel& model) {
        // ForEach hands out const refs; fetch mutable via the store.
        auto mutable_model = sums_->GetMutable(model.user());
        if (mutable_model.ok()) {
          updater_.Decay(mutable_model.value(),
                         sum::AttributeKind::kEmotional);
        }
      });
      ++stats_.decay_rounds;
    }
  }
}

void AttributesManagerAgent::HandleEitAnswer(
    const EitAnswerObserved& answer) {
  ++stats_.eit_answers;
  sum::SmartUserModel* model = sums_->GetOrCreate(answer.user);
  const sum::AttributeCatalog& catalog = model->catalog();
  const double neutral = config_.eit_neutral_consensus;
  for (const eit::AttributeImpact& impact : answer.activations) {
    const sum::AttributeId id = catalog.EmotionalId(impact.attribute);
    // `impact.weight` arrives as item weight x consensus score; recover
    // the consensus level relative to the neutral point so that
    // high-consensus answers activate and low-consensus answers
    // inhibit the impacted attribute.
    const double consensus_part =
        impact.weight;  // in [0, weight]; weight <= 1
    const double signal =
        (consensus_part - neutral) / (1.0 - neutral);
    const double magnitude =
        std::min(1.5, std::abs(signal) * config_.eit_gain);
    if (signal >= 0.0) {
      updater_.Reward(model, id, magnitude);
      ++stats_.reinforcements;
    } else {
      updater_.Punish(model, id, magnitude);
      ++stats_.punishments;
    }
    // The attribute *value* tracks the activation level too (it feeds
    // the propensity features).
    model->set_value(id, model->sensibility(id));
  }
}

void AttributesManagerAgent::HandleInteraction(
    const InteractionObserved& interaction) {
  sum::SmartUserModel* model = sums_->GetOrCreate(interaction.user);
  if (interaction.argued_attribute < 0) return;  // standard message
  if (interaction.positive) {
    updater_.Reward(model, interaction.argued_attribute,
                    interaction.magnitude);
    ++stats_.reinforcements;
  } else {
    updater_.Punish(model, interaction.argued_attribute,
                    interaction.magnitude);
    ++stats_.punishments;
  }
}

}  // namespace spa::agents
