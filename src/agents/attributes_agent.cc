#include "agents/attributes_agent.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace spa::agents {

AttributesManagerAgent::AttributesManagerAgent(
    sum::SumService* sums, AttributesAgentConfig config)
    : Agent("attributes-manager"), sums_(sums), config_(config) {
  SPA_CHECK(sums != nullptr);
}

void AttributesManagerAgent::OnMessage(const Envelope& envelope,
                                       AgentContext* ctx) {
  (void)ctx;
  if (const auto* answer =
          std::get_if<EitAnswerObserved>(&envelope.payload)) {
    HandleEitAnswer(*answer);
  } else if (const auto* interaction =
                 std::get_if<InteractionObserved>(&envelope.payload)) {
    HandleInteraction(*interaction);
  } else if (std::get_if<PreprocessReport>(&envelope.payload) !=
             nullptr) {
    ++stats_.preprocess_reports;
  } else if (std::get_if<Tick>(&envelope.payload) != nullptr) {
    if (config_.decay_on_tick) {
      // One batched publish decaying every user (a single version
      // bump — the cache invalidates exactly once per round).
      SPA_CHECK(sums_->DecayAll(sum::AttributeKind::kEmotional).ok());
      ++stats_.decay_rounds;
    }
  }
}

void AttributesManagerAgent::HandleEitAnswer(
    const EitAnswerObserved& answer) {
  ++stats_.eit_answers;
  const sum::AttributeCatalog& catalog = sums_->catalog();
  sum::SumUpdate update(answer.user);
  const double neutral = config_.eit_neutral_consensus;
  for (const eit::AttributeImpact& impact : answer.activations) {
    const sum::AttributeId id = catalog.EmotionalId(impact.attribute);
    // `impact.weight` arrives as item weight x consensus score; recover
    // the consensus level relative to the neutral point so that
    // high-consensus answers activate and low-consensus answers
    // inhibit the impacted attribute.
    const double consensus_part =
        impact.weight;  // in [0, weight]; weight <= 1
    const double signal =
        (consensus_part - neutral) / (1.0 - neutral);
    const double magnitude =
        std::min(1.5, std::abs(signal) * config_.eit_gain);
    if (signal >= 0.0) {
      update.Reward(id, magnitude);
      ++stats_.reinforcements;
    } else {
      update.Punish(id, magnitude);
      ++stats_.punishments;
    }
    // The attribute *value* tracks the activation level too (it feeds
    // the propensity features).
    update.ValueFromSensibility(id);
  }
  SPA_CHECK(sums_->Apply(update).ok());
}

void AttributesManagerAgent::HandleInteraction(
    const InteractionObserved& interaction) {
  sum::SumUpdate update(interaction.user);
  if (interaction.argued_attribute >= 0) {
    if (interaction.positive) {
      update.Reward(interaction.argued_attribute,
                    interaction.magnitude);
      ++stats_.reinforcements;
    } else {
      update.Punish(interaction.argued_attribute,
                    interaction.magnitude);
      ++stats_.punishments;
    }
  }
  // A standard-message interaction still touches the user into
  // existence (the old GetOrCreate behaviour) — but when the model
  // already exists and nothing changed, skip the publish: a no-op
  // version bump would invalidate the user's cached recommendations
  // for free.
  if (update.empty() && sums_->snapshot()->Contains(interaction.user)) {
    return;
  }
  SPA_CHECK(sums_->Apply(update).ok());
}

}  // namespace spa::agents
