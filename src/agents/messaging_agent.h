#ifndef SPA_AGENTS_MESSAGING_AGENT_H_
#define SPA_AGENTS_MESSAGING_AGENT_H_

#include <array>
#include <string>
#include <unordered_map>

#include "agents/runtime.h"
#include "sum/sum_service.h"

/// \file
/// The Messaging Agent (SPA component 4): simulates the salesman who
/// adapts the sales talk to the customer's sensibilities (§5.3).
/// Message generation follows the paper's three steps: (1) select the
/// product attributes usable as sales arguments, (2) keep one message
/// template per attribute in a database, (3) assign a message per user:
///   a)   no matching sensibility        -> standard message
///   b)   exactly one match              -> that attribute's message
///   c.i)  several matches, priority     -> highest-priority attribute
///   c.ii) several matches, sensibility  -> strongest sensibility
/// Fig. 5 shows one example of each case.

namespace spa::agents {

/// Tie-break policy for case (c).
enum class MultiMatchPolicy : uint8_t {
  kPriority = 0,        ///< 3.c.i — product attribute priority order
  kMaxSensibility = 1,  ///< 3.c.ii — user's strongest sensibility
};

struct MessagingAgentConfig {
  /// Sensibility threshold for an attribute to count as a match.
  double sensibility_threshold = 0.5;
  MultiMatchPolicy policy = MultiMatchPolicy::kMaxSensibility;
};

/// \brief Composes individualized messages from SUM sensibilities.
///
/// Reads pin the SumService's current snapshot per composition, so a
/// message is always argued from one consistent view of the user even
/// while the Attributes Manager updates sensibilities concurrently.
class MessagingAgent : public Agent {
 public:
  MessagingAgent(const sum::SumService* sums,
                 MessagingAgentConfig config = {});

  void OnMessage(const Envelope& envelope, AgentContext* ctx) override;

  /// Registers/overrides the message template for a product attribute.
  /// `%s` in the template is substituted with the attribute name.
  void SetTemplate(sum::AttributeId attribute, std::string text);

  /// The standard (non-personalized) fallback message.
  void SetStandardTemplate(std::string text);

  /// Pure composition entry point (also used by the benches directly,
  /// without going through the mailbox).
  ComposedMessage Compose(const ComposeMessageRequest& request) const;

  struct Stats {
    std::array<uint64_t, 4> by_case{};  ///< indexed by MessageCase
    uint64_t composed = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  std::string RenderTemplate(sum::AttributeId attribute) const;

  const sum::SumService* sums_;
  MessagingAgentConfig config_;
  std::unordered_map<sum::AttributeId, std::string> templates_;
  std::string standard_template_;
  mutable Stats stats_;
};

/// Installs the default template set for the emagister catalog: one
/// emotionally-argued template per emotional attribute plus a handful of
/// subjective ones (price, certification, flexibility).
void InstallDefaultTemplates(const sum::AttributeCatalog& catalog,
                             MessagingAgent* agent);

}  // namespace spa::agents

#endif  // SPA_AGENTS_MESSAGING_AGENT_H_
