#include "agents/messaging_agent.h"

#include <algorithm>

#include "common/check.h"
#include "common/string_util.h"

namespace spa::agents {

MessagingAgent::MessagingAgent(const sum::SumService* sums,
                               MessagingAgentConfig config)
    : Agent("messaging"), sums_(sums), config_(config),
      standard_template_(
          "Discover our featured training courses - enrol today.") {
  SPA_CHECK(sums != nullptr);
}

void MessagingAgent::OnMessage(const Envelope& envelope,
                               AgentContext* ctx) {
  if (const auto* request =
          std::get_if<ComposeMessageRequest>(&envelope.payload)) {
    ComposedMessage message = Compose(*request);
    ctx->Send(envelope.from, std::move(message));
  }
}

void MessagingAgent::SetTemplate(sum::AttributeId attribute,
                                 std::string text) {
  templates_[attribute] = std::move(text);
}

void MessagingAgent::SetStandardTemplate(std::string text) {
  standard_template_ = std::move(text);
}

std::string MessagingAgent::RenderTemplate(
    sum::AttributeId attribute) const {
  const auto it = templates_.find(attribute);
  const std::string& name =
      sums_->catalog().def(attribute).name;
  if (it == templates_.end()) {
    return spa::StrFormat(
        "This course is perfect for people who value %s.", name.c_str());
  }
  if (it->second.find("%s") != std::string::npos) {
    return spa::StrFormat(it->second.c_str(), name.c_str());
  }
  return it->second;
}

ComposedMessage MessagingAgent::Compose(
    const ComposeMessageRequest& request) const {
  ComposedMessage out;
  out.user = request.user;
  out.course = request.course;

  // Pin one snapshot for the whole composition.
  const sum::SumSnapshotPtr snapshot = sums_->snapshot();
  const auto model = snapshot->Get(request.user);

  // Matching sensibilities among the product attributes, preserving the
  // product's priority order.
  std::vector<sum::AttributeId> matches;
  if (model.ok()) {
    for (sum::AttributeId attr : request.product_attributes) {
      if (model.value()->sensibility(attr) >=
          config_.sensibility_threshold) {
        matches.push_back(attr);
      }
    }
  }

  if (matches.empty()) {
    out.message_case = MessageCase::kStandard;
    out.argued_attribute = -1;
    out.text = standard_template_;
  } else if (matches.size() == 1) {
    out.message_case = MessageCase::kSingleMatch;
    out.argued_attribute = matches[0];
    out.text = RenderTemplate(matches[0]);
  } else if (config_.policy == MultiMatchPolicy::kPriority) {
    out.message_case = MessageCase::kPriority;
    out.argued_attribute = matches[0];  // priority order preserved
    out.text = RenderTemplate(matches[0]);
  } else {
    out.message_case = MessageCase::kMaxSensibility;
    const sum::SmartUserModel& m = *model.value();
    out.argued_attribute = *std::max_element(
        matches.begin(), matches.end(),
        [&m](sum::AttributeId a, sum::AttributeId b) {
          if (m.sensibility(a) != m.sensibility(b)) {
            return m.sensibility(a) < m.sensibility(b);
          }
          return a > b;  // ties: lower id wins
        });
    out.text = RenderTemplate(out.argued_attribute);
  }

  ++stats_.by_case[static_cast<size_t>(out.message_case)];
  ++stats_.composed;
  return out;
}

void InstallDefaultTemplates(const sum::AttributeCatalog& catalog,
                             MessagingAgent* agent) {
  struct NamedTemplate {
    std::string_view attribute;
    std::string_view text;
  };
  static constexpr NamedTemplate kTemplates[] = {
      {"enthusiastic",
       "Bring your enthusiasm to life! This course gives you the spark "
       "to turn energy into real skills."},
      {"motivated",
       "You know where you are going. This course is the next step for "
       "people as motivated as you."},
      {"empathic",
       "Learn alongside people who care. A course designed for those "
       "who understand others."},
      {"hopeful",
       "A better future starts today: this course opens the doors you "
       "have been hoping for."},
      {"lively",
       "Dynamic classes, hands-on projects, zero boredom. Made for "
       "lively minds like yours."},
      {"stimulated",
       "New challenges every week - a course that keeps your curiosity "
       "fully stimulated."},
      {"impatient",
       "Fast-track format: results from day one, no time wasted."},
      {"frightened",
       "Step by step, with tutors beside you the whole way. Learning "
       "without fear."},
      {"shy",
       "Learn at your own pace from home - no crowded classrooms, full "
       "personal support."},
      {"apathetic",
       "Not sure anything is worth it? This short course has surprised "
       "people just like you."},
      {"price_sensitivity",
       "Best value guaranteed: top training at a price that respects "
       "your budget."},
      {"certification_value",
       "Finish with an accredited certificate employers recognize."},
      {"flexibility_importance",
       "Study when it suits you: evenings, weekends, fully flexible."},
  };
  for (const NamedTemplate& t : kTemplates) {
    const auto id = catalog.IdOf(std::string(t.attribute));
    if (id.ok()) {
      agent->SetTemplate(id.value(), std::string(t.text));
    }
  }
}

}  // namespace spa::agents
