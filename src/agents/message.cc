#include "agents/message.h"

namespace spa::agents {

std::string_view PayloadName(const Payload& payload) {
  struct Visitor {
    std::string_view operator()(const RawLogBatch&) const {
      return "RawLogBatch";
    }
    std::string_view operator()(const PreprocessReport&) const {
      return "PreprocessReport";
    }
    std::string_view operator()(const EitAnswerObserved&) const {
      return "EitAnswerObserved";
    }
    std::string_view operator()(const InteractionObserved&) const {
      return "InteractionObserved";
    }
    std::string_view operator()(const ComposeMessageRequest&) const {
      return "ComposeMessageRequest";
    }
    std::string_view operator()(const ComposedMessage&) const {
      return "ComposedMessage";
    }
    std::string_view operator()(const Tick&) const { return "Tick"; }
  };
  return std::visit(Visitor{}, payload);
}

}  // namespace spa::agents
