#ifndef SPA_AGENTS_RUNTIME_H_
#define SPA_AGENTS_RUNTIME_H_

#include <deque>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "agents/message.h"
#include "common/sim_clock.h"
#include "common/status.h"

/// \file
/// Deterministic cooperative agent runtime: agents exchange envelopes
/// through a global FIFO; delivery order is completely determined by
/// send order, so every multi-agent experiment is reproducible.

namespace spa::agents {

class AgentRuntime;

/// \brief Capabilities an agent gets while handling a message.
class AgentContext {
 public:
  AgentContext(AgentRuntime* runtime, std::string self);

  /// Sends a payload to another agent (queued FIFO).
  void Send(const std::string& to, Payload payload);

  /// Registers a new agent (the pre-processor's self-replication path).
  /// Returns false if the name is already taken.
  bool SpawnAgent(std::unique_ptr<class Agent> agent);

  spa::TimeMicros now() const;
  const std::string& self() const { return self_; }

 private:
  AgentRuntime* runtime_;
  std::string self_;
};

/// \brief Base class for all agents.
class Agent {
 public:
  explicit Agent(std::string name) : name_(std::move(name)) {}
  virtual ~Agent() = default;

  const std::string& name() const { return name_; }

  /// Handles one delivered envelope.
  virtual void OnMessage(const Envelope& envelope, AgentContext* ctx) = 0;

 private:
  std::string name_;
};

/// \brief Per-agent delivery statistics.
struct AgentStats {
  uint64_t delivered = 0;
  uint64_t sent = 0;
};

/// \brief Deterministic single-threaded runtime.
class AgentRuntime {
 public:
  explicit AgentRuntime(spa::SimClock* clock);

  /// Registers an agent; fails on duplicate names.
  spa::Status Register(std::unique_ptr<Agent> agent);

  bool HasAgent(const std::string& name) const;

  /// Queues an envelope from outside the agent system.
  void Inject(const std::string& to, Payload payload);

  /// Delivers queued envelopes until the queue drains or `max_deliveries`
  /// is hit. Returns the number of envelopes delivered.
  size_t RunUntilIdle(size_t max_deliveries = 1'000'000);

  /// Broadcasts a Tick to every agent, then drains.
  size_t TickAll();

  size_t queue_depth() const { return queue_.size(); }
  const std::unordered_map<std::string, AgentStats>& stats() const {
    return stats_;
  }
  const std::vector<std::string>& agent_names() const { return names_; }
  uint64_t dropped() const { return dropped_; }

 private:
  friend class AgentContext;
  void Enqueue(const std::string& from, const std::string& to,
               Payload payload);

  spa::SimClock* clock_;
  std::unordered_map<std::string, std::unique_ptr<Agent>> agents_;
  std::vector<std::string> names_;  // registration order
  std::deque<Envelope> queue_;
  std::unordered_map<std::string, AgentStats> stats_;
  int64_t next_seq_ = 0;
  uint64_t dropped_ = 0;  // envelopes to unknown agents
};

}  // namespace spa::agents

#endif  // SPA_AGENTS_RUNTIME_H_
