#ifndef SPA_AGENTS_PREPROCESSOR_AGENT_H_
#define SPA_AGENTS_PREPROCESSOR_AGENT_H_

#include <memory>
#include <string>

#include "agents/runtime.h"
#include "lifelog/preprocessor.h"
#include "lifelog/store.h"

/// \file
/// The LifeLogs Pre-processor Agent (SPA component 1): "replicates
/// itself in pro-active way depending of user's interaction with several
/// applications" (§4). When a replica's backlog exceeds its capacity it
/// spawns a sibling and splits the batch, so ingest throughput scales
/// with load.

namespace spa::agents {

struct PreprocessorAgentConfig {
  /// Lines one replica is willing to take from a single batch before
  /// off-loading the rest to a (possibly new) sibling.
  size_t capacity_per_batch = 10'000;
  /// Upper bound on the replica population.
  size_t max_replicas = 8;
};

/// \brief Self-replicating log pre-processing agent.
///
/// All replicas share the target store and the replication bookkeeping
/// through a shared Family block owned by the primary.
class PreprocessorAgent : public Agent {
 public:
  /// Creates the primary replica ("preproc-0").
  PreprocessorAgent(const lifelog::ActionCatalog* catalog,
                    lifelog::LifeLogStore* store,
                    PreprocessorAgentConfig config = {});

  void OnMessage(const Envelope& envelope, AgentContext* ctx) override;

  /// Aggregate statistics across every replica.
  struct FamilyStats {
    lifelog::PreprocessStats preprocess;
    size_t replicas = 1;
    uint64_t batches = 0;
    uint64_t overflow_handoffs = 0;
  };
  const FamilyStats& family_stats() const { return family_->stats; }

 private:
  struct Family {
    FamilyStats stats;
    const lifelog::ActionCatalog* catalog;
    lifelog::LifeLogStore* store;
    PreprocessorAgentConfig config;
    /// Shared dedup state lives in one preprocessor per family so that
    /// replicas do not re-admit each other's duplicates.
    lifelog::LifeLogPreprocessor preprocessor;

    Family(const lifelog::ActionCatalog* cat,
           lifelog::LifeLogStore* st, PreprocessorAgentConfig cfg)
        : catalog(cat), store(st), config(cfg), preprocessor(cat) {}
  };

  /// Replica constructor.
  PreprocessorAgent(std::shared_ptr<Family> family, size_t index);

  void HandleBatch(const RawLogBatch& batch, AgentContext* ctx);

  std::shared_ptr<Family> family_;
  size_t index_;
};

}  // namespace spa::agents

#endif  // SPA_AGENTS_PREPROCESSOR_AGENT_H_
