#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstring>
#include <mutex>

namespace spa {

namespace {
std::atomic<LogLevel> g_min_level{LogLevel::kInfo};
std::mutex g_log_mutex;

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash ? slash + 1 : path;
}
}  // namespace

void SetMinLogLevel(LogLevel level) { g_min_level.store(level); }
LogLevel MinLogLevel() { return g_min_level.load(); }

const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << "[" << LogLevelName(level) << " " << Basename(file) << ":"
          << line << "] ";
}

LogMessage::~LogMessage() {
  if (level_ < MinLogLevel()) return;
  std::lock_guard<std::mutex> lock(g_log_mutex);
  std::fprintf(stderr, "%s\n", stream_.str().c_str());
}

}  // namespace spa
