#include "common/frequency_map.h"

#include <algorithm>

#include "common/hash.h"

namespace spa {

FrequencyMap::FrequencyMap(FrequencyMapConfig config) : config_(config) {
  if (config_.shards == 0) config_.shards = 1;
  shards_ = std::make_unique<Shard[]>(config_.shards);
}

FrequencyMap::Shard& FrequencyMap::ShardOf(uint64_t key) const {
  return shards_[SplitMix64(key) % config_.shards];
}

void FrequencyMap::Touch(uint64_t key, double amount) {
  Shard& shard = ShardOf(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  shard.counts[key] += amount;
  ++shard.touches;
}

double FrequencyMap::Count(uint64_t key) const {
  Shard& shard = ShardOf(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  const auto it = shard.counts.find(key);
  return it == shard.counts.end() ? 0.0 : it->second;
}

void FrequencyMap::Decay() {
  for (size_t s = 0; s < config_.shards; ++s) {
    Shard& shard = shards_[s];
    std::lock_guard<std::mutex> lock(shard.mu);
    for (auto it = shard.counts.begin(); it != shard.counts.end();) {
      it->second *= config_.decay_factor;
      if (it->second < config_.min_count) {
        it = shard.counts.erase(it);
      } else {
        ++it;
      }
    }
  }
  decay_epochs_.fetch_add(1, std::memory_order_relaxed);
}

size_t FrequencyMap::size() const {
  size_t total = 0;
  for (size_t s = 0; s < config_.shards; ++s) {
    Shard& shard = shards_[s];
    std::lock_guard<std::mutex> lock(shard.mu);
    total += shard.counts.size();
  }
  return total;
}

std::vector<std::pair<uint64_t, double>> FrequencyMap::TopK(size_t k) const {
  std::vector<std::pair<uint64_t, double>> entries;
  for (size_t s = 0; s < config_.shards; ++s) {
    Shard& shard = shards_[s];
    std::lock_guard<std::mutex> lock(shard.mu);
    entries.insert(entries.end(), shard.counts.begin(), shard.counts.end());
  }
  std::sort(entries.begin(), entries.end(),
            [](const std::pair<uint64_t, double>& a,
               const std::pair<uint64_t, double>& b) {
              if (a.second != b.second) return a.second > b.second;
              return a.first < b.first;
            });
  if (entries.size() > k) entries.resize(k);
  return entries;
}

void FrequencyMap::Clear() {
  for (size_t s = 0; s < config_.shards; ++s) {
    Shard& shard = shards_[s];
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.counts.clear();
  }
}

FrequencyMapStats FrequencyMap::stats() const {
  FrequencyMapStats stats;
  for (size_t s = 0; s < config_.shards; ++s) {
    Shard& shard = shards_[s];
    std::lock_guard<std::mutex> lock(shard.mu);
    stats.touches += shard.touches;
    stats.entries += shard.counts.size();
  }
  stats.decay_epochs = decay_epochs_.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace spa
