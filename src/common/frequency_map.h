#ifndef SPA_COMMON_FREQUENCY_MAP_H_
#define SPA_COMMON_FREQUENCY_MAP_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

/// \file
/// A sharded access-frequency counter for cache tiering: the CPU-side
/// analogue of the GPU frequency hashmaps sampling caches use. Callers
/// `Touch` a key per access and read back decayed counts; the serving
/// cache admits/retains by comparing the counts, so one-hit wonders
/// cannot evict the hot set under power-law traffic.
///
/// Counts age by periodic multiplicative `Decay()` (one *epoch*):
/// every count is multiplied by `decay_factor` and entries that fall
/// below `min_count` are erased, so the map tracks *recent* frequency
/// in O(live keys) memory instead of an unbounded all-time histogram.
///
/// ## Determinism
///
/// A count is a pure fold of the key's Touch amounts and the decay
/// epochs interleaved with them, independent of the shard count (each
/// key lives in exactly one shard) and of which threads touched it —
/// for the integral amounts the serving layer uses, floating-point
/// accumulation is exact, so any interleaving sums to the same value.
/// `TopK` orders by (count desc, key asc), a total order, so equal
/// streams produce equal rankings at any shard count. The property
/// tests in `tests/common/frequency_map_test.cc` pin both claims
/// against a naive single-map reference.
///
/// Thread-safe: keys hash to one of `shards` sub-maps, each behind its
/// own mutex, so concurrent touches to different keys rarely contend.
/// `Decay`/`TopK`/`size` sweep the shards one at a time (no global
/// lock; a concurrent Touch lands either before or after the sweep
/// reaches its shard).

namespace spa {

/// \brief Tunables of one frequency map.
struct FrequencyMapConfig {
  /// Sub-map count (>= 1). Purely a contention knob: counts and TopK
  /// are shard-count-invariant.
  size_t shards = 16;
  /// Multiplier applied to every count by one Decay() epoch.
  double decay_factor = 0.5;
  /// Counts strictly below this after a decay are erased.
  double min_count = 0.5;
};

/// \brief Cumulative counters (sizes are live values, not cumulative).
struct FrequencyMapStats {
  uint64_t touches = 0;       ///< Touch() calls
  uint64_t decay_epochs = 0;  ///< Decay() sweeps completed
  size_t entries = 0;         ///< live keys across all shards
};

/// \brief Sharded decayed access-frequency counter over uint64 keys.
class FrequencyMap {
 public:
  explicit FrequencyMap(FrequencyMapConfig config = {});

  /// Adds `amount` to `key`'s count (default: one access).
  void Touch(uint64_t key, double amount = 1.0);

  /// The key's current (decayed) count; 0 for untracked keys.
  double Count(uint64_t key) const;

  /// One aging epoch: multiplies every count by `decay_factor` and
  /// erases entries that fell below `min_count`.
  void Decay();

  /// Completed Decay() epochs.
  uint64_t decay_epochs() const {
    return decay_epochs_.load(std::memory_order_relaxed);
  }

  /// Live keys across all shards.
  size_t size() const;

  /// The `k` highest-count entries, ordered by (count desc, key asc) —
  /// a total order, so the result is shard-count-invariant.
  std::vector<std::pair<uint64_t, double>> TopK(size_t k) const;

  /// Drops every entry (counters are kept).
  void Clear();

  FrequencyMapStats stats() const;

 private:
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<uint64_t, double> counts;
    uint64_t touches = 0;
  };

  Shard& ShardOf(uint64_t key) const;

  FrequencyMapConfig config_;
  std::unique_ptr<Shard[]> shards_;
  std::atomic<uint64_t> decay_epochs_{0};
};

}  // namespace spa

#endif  // SPA_COMMON_FREQUENCY_MAP_H_
