#include "common/rng.h"

#include <cmath>

#include "common/check.h"

namespace spa {

namespace {
inline uint64_t Rotl(uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

uint64_t SplitMix64::Next() {
  uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Rng::Rng(uint64_t seed, uint64_t stream) {
  // Mix the stream id into the seed so that (seed, 0) and (seed, 1) start
  // from unrelated states.
  SplitMix64 sm(seed ^ (0x9e3779b97f4a7c15ULL * (stream + 1)));
  for (auto& s : s_) s = sm.Next();
  // All-zero state is invalid for xoshiro; SplitMix64 cannot produce four
  // zero outputs in a row, but guard anyway.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

uint64_t Rng::U64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::Uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(U64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  SPA_DCHECK(lo <= hi);
  return lo + (hi - lo) * Uniform();
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  SPA_CHECK(lo <= hi);
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<int64_t>(U64());  // full 64-bit range
  // Lemire's rejection method for unbiased bounded integers.
  uint64_t x = U64();
  __uint128_t m = static_cast<__uint128_t>(x) * span;
  uint64_t l = static_cast<uint64_t>(m);
  if (l < span) {
    const uint64_t t = (0 - span) % span;
    while (l < t) {
      x = U64();
      m = static_cast<__uint128_t>(x) * span;
      l = static_cast<uint64_t>(m);
    }
  }
  return lo + static_cast<int64_t>(m >> 64);
}

double Rng::Normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u, v, s;
  do {
    u = Uniform(-1.0, 1.0);
    v = Uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  cached_normal_ = v * factor;
  has_cached_normal_ = true;
  return u * factor;
}

double Rng::Normal(double mean, double stddev) {
  return mean + stddev * Normal();
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return Uniform() < p;
}

double Rng::Exponential(double lambda) {
  SPA_DCHECK(lambda > 0.0);
  double u;
  do {
    u = Uniform();
  } while (u == 0.0);
  return -std::log(u) / lambda;
}

double Rng::LogNormal(double mu, double sigma) {
  return std::exp(Normal(mu, sigma));
}

int Rng::Poisson(double mean) {
  SPA_DCHECK(mean >= 0.0);
  if (mean <= 0.0) return 0;
  const double limit = std::exp(-mean);
  double product = Uniform();
  int count = 0;
  while (product > limit) {
    product *= Uniform();
    ++count;
  }
  return count;
}

int64_t Rng::Zipf(int64_t n, double s) {
  SPA_CHECK(n >= 1);
  SPA_CHECK(s > 0.0);
  // Rejection-inversion sampling (Hörmann & Derflinger 1996).
  const double b = std::pow(2.0, s - 1.0);
  double x, t;
  do {
    const double u = Uniform();
    const double v = Uniform();
    x = std::floor(std::pow(u, -1.0 / (s - 1.0 + 1e-12)));
    t = std::pow(1.0 + 1.0 / x, s - 1.0);
    if (x > static_cast<double>(n)) continue;
    if (v * x * (t - 1.0) / (b - 1.0) <= t / b) break;
  } while (true);
  return static_cast<int64_t>(x);
}

size_t Rng::Categorical(const std::vector<double>& weights) {
  SPA_CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    SPA_DCHECK(w >= 0.0);
    total += w;
  }
  SPA_CHECK(total > 0.0);
  double r = Uniform() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    r -= weights[i];
    if (r < 0.0) return i;
  }
  return weights.size() - 1;  // numerical edge case
}

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t k) {
  SPA_CHECK(k <= n);
  // Floyd's algorithm then shuffle for random order.
  std::vector<size_t> picked;
  picked.reserve(k);
  std::vector<bool> seen(n, false);
  for (size_t j = n - k; j < n; ++j) {
    size_t t = static_cast<size_t>(UniformInt(0, static_cast<int64_t>(j)));
    if (seen[t]) t = j;
    seen[t] = true;
    picked.push_back(t);
  }
  Shuffle(&picked);
  return picked;
}

}  // namespace spa
