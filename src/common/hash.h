#ifndef SPA_COMMON_HASH_H_
#define SPA_COMMON_HASH_H_

#include <cstdint>

/// \file
/// Shared integer mixing for shard routing and fingerprinting. Raw ids
/// are often sequential, so modulo alone would route whole id ranges to
/// one shard; SplitMix64 decorrelates them first.

namespace spa {

/// SplitMix64 finalizer: a cheap, well-distributed 64-bit mix.
inline uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace spa

#endif  // SPA_COMMON_HASH_H_
