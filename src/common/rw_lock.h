#ifndef SPA_COMMON_RW_LOCK_H_
#define SPA_COMMON_RW_LOCK_H_

#include <condition_variable>
#include <mutex>

/// \file
/// Writer-priority reader/writer lock. `std::shared_mutex` leaves the
/// reader/writer preference to the platform, and glibc's default
/// prefers readers — under continuous read traffic (exactly what a
/// serving engine sees) a writer can wait unboundedly. Live updates
/// need bounded latency: once a writer announces itself, new readers
/// queue behind it, the writer enters as soon as the active readers
/// drain, and readers resume afterwards.
///
/// Satisfies SharedLockable/Lockable, so `std::shared_lock` /
/// `std::unique_lock` work as usual. Not recursive: a thread holding
/// the shared side must not re-acquire (it would deadlock behind a
/// waiting writer).

namespace spa {

/// \brief Reader/writer mutex that never starves writers.
class WriterPriorityMutex {
 public:
  void lock_shared() {
    std::unique_lock<std::mutex> lock(mu_);
    reader_cv_.wait(lock, [this] {
      return waiting_writers_ == 0 && !writer_active_;
    });
    ++active_readers_;
  }

  void unlock_shared() {
    std::lock_guard<std::mutex> lock(mu_);
    if (--active_readers_ == 0 && waiting_writers_ > 0) {
      writer_cv_.notify_one();
    }
  }

  void lock() {
    std::unique_lock<std::mutex> lock(mu_);
    ++waiting_writers_;
    writer_cv_.wait(lock, [this] {
      return active_readers_ == 0 && !writer_active_;
    });
    --waiting_writers_;
    writer_active_ = true;
  }

  void unlock() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      writer_active_ = false;
    }
    // Queued writers go first (priority); otherwise wake the readers.
    writer_cv_.notify_one();
    reader_cv_.notify_all();
  }

 private:
  std::mutex mu_;
  std::condition_variable reader_cv_;
  std::condition_variable writer_cv_;
  int active_readers_ = 0;
  int waiting_writers_ = 0;
  bool writer_active_ = false;
};

}  // namespace spa

#endif  // SPA_COMMON_RW_LOCK_H_
