#include "common/profiler.h"

#include "common/check.h"
#include "common/string_util.h"

namespace spa {

namespace {

struct ItemMeta {
  const char* name;
  ProfilerLevel level;
};

/// Indexed by ProfilerItem. Names are stable export API.
constexpr ItemMeta kItemMeta[kProfilerItemCount] = {
    {"request.serve", ProfilerLevel::kL1},
    {"batch.serve", ProfilerLevel::kL1},
    {"update.apply", ProfilerLevel::kL1},
    {"stage.cache_lookup", ProfilerLevel::kL2},
    {"stage.candidate_gen", ProfilerLevel::kL2},
    {"stage.blend", ProfilerLevel::kL2},
    {"stage.rerank", ProfilerLevel::kL2},
    {"stage.explain", ProfilerLevel::kL2},
    {"candidate.component", ProfilerLevel::kL3},
    {"rerank.score", ProfilerLevel::kL3},
    {"rerank.sort", ProfilerLevel::kL3},
    {"apply.user_shard_group", ProfilerLevel::kL3},
    {"apply.item_shard_group", ProfilerLevel::kL3},
    {"workspace.acquire", ProfilerLevel::kL3},
    {"workspace.release", ProfilerLevel::kL3},
    {"kernel.score_accumulate", ProfilerLevel::kL3},
};

}  // namespace

const char* ProfilerItemName(ProfilerItem item) {
  const auto idx = static_cast<size_t>(item);
  SPA_CHECK(idx < kProfilerItemCount);
  return kItemMeta[idx].name;
}

ProfilerLevel ProfilerItemLevel(ProfilerItem item) {
  const auto idx = static_cast<size_t>(item);
  SPA_CHECK(idx < kProfilerItemCount);
  return kItemMeta[idx].level;
}

Profiler::Profiler(ProfilerLevel level)
    : level_(static_cast<int>(level)) {}

void Profiler::RecordInto(Bank* bank, uint64_t nanos, double seconds) {
  bank->count.fetch_add(1, std::memory_order_relaxed);
  bank->total_nanos.fetch_add(nanos, std::memory_order_relaxed);
  uint64_t prev = bank->max_nanos.load(std::memory_order_relaxed);
  while (prev < nanos &&
         !bank->max_nanos.compare_exchange_weak(
             prev, nanos, std::memory_order_relaxed)) {
  }
  bank->histogram.Add(seconds);
}

void Profiler::Record(ProfilerItem item, double seconds) {
  if (!enabled(item)) return;
  const auto nanos = static_cast<uint64_t>(seconds * 1e9);
  Item& slot = items_[static_cast<size_t>(item)];
  RecordInto(&slot.cumulative, nanos, seconds);
  RecordInto(&slot.epoch, nanos, seconds);
}

void Profiler::AdvanceEpoch() {
  epochs_.fetch_add(1, std::memory_order_relaxed);
  for (Item& slot : items_) {
    slot.epoch.count.store(0, std::memory_order_relaxed);
    slot.epoch.total_nanos.store(0, std::memory_order_relaxed);
    slot.epoch.max_nanos.store(0, std::memory_order_relaxed);
    slot.epoch.histogram.Reset();
  }
}

ProfilerSnapshot Profiler::Snapshot(ProfilerLevel max_level,
                                    bool current_epoch) const {
  ProfilerSnapshot out;
  out.epochs = epochs();
  for (size_t i = 0; i < kProfilerItemCount; ++i) {
    const auto item = static_cast<ProfilerItem>(i);
    const ProfilerLevel level = ProfilerItemLevel(item);
    if (static_cast<int>(level) > static_cast<int>(max_level)) continue;
    const Bank& bank =
        current_epoch ? items_[i].epoch : items_[i].cumulative;
    ProfilerItemSnapshot s;
    s.item = item;
    s.name = ProfilerItemName(item);
    s.level = static_cast<int>(level);
    s.count = bank.count.load(std::memory_order_relaxed);
    s.total_seconds =
        static_cast<double>(
            bank.total_nanos.load(std::memory_order_relaxed)) *
        1e-9;
    s.max_seconds =
        static_cast<double>(
            bank.max_nanos.load(std::memory_order_relaxed)) *
        1e-9;
    s.histogram = bank.histogram;  // snapshot copy
    s.p50_seconds = s.histogram.Quantile(0.50);
    s.p95_seconds = s.histogram.Quantile(0.95);
    s.p99_seconds = s.histogram.Quantile(0.99);
    out.items.push_back(std::move(s));
  }
  return out;
}

std::string Profiler::ExportItemsJson(ProfilerLevel max_level,
                                      int indent) const {
  const ProfilerSnapshot snapshot = Snapshot(max_level);
  const std::string pad(static_cast<size_t>(indent), ' ');
  std::string out = "[\n";
  for (size_t i = 0; i < snapshot.items.size(); ++i) {
    const ProfilerItemSnapshot& s = snapshot.items[i];
    out += pad;
    out += StrFormat(
        "  {\"name\": \"%s\", \"level\": %d, \"count\": %llu, "
        "\"total_seconds\": %.6f, \"max_seconds\": %.6f, "
        "\"p50_us\": %.3f, \"p95_us\": %.3f, \"p99_us\": %.3f}%s\n",
        s.name, s.level, static_cast<unsigned long long>(s.count),
        s.total_seconds, s.max_seconds, s.p50_seconds * 1e6,
        s.p95_seconds * 1e6, s.p99_seconds * 1e6,
        i + 1 < snapshot.items.size() ? "," : "");
  }
  out += pad + "]";
  return out;
}

std::string Profiler::ExportJson(ProfilerLevel max_level,
                                 int indent) const {
  const std::string pad(static_cast<size_t>(indent), ' ');
  std::string out = "{\n";
  out += pad + StrFormat("  \"level\": %d,\n",
                         static_cast<int>(level()));
  out += pad + StrFormat("  \"epochs\": %llu,\n",
                         static_cast<unsigned long long>(epochs()));
  out += pad + "  \"items\": " + ExportItemsJson(max_level, indent + 2) +
         "\n";
  out += pad + "}";
  return out;
}

}  // namespace spa
