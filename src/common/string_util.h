#ifndef SPA_COMMON_STRING_UTIL_H_
#define SPA_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

/// \file
/// Small string helpers shared across the library (no locale surprises,
/// ASCII-only semantics).

namespace spa {

/// Splits on a single character; keeps empty fields ("a,,b" -> 3 fields).
std::vector<std::string> Split(std::string_view s, char delim);

/// Joins with a separator.
std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep);

/// Strips leading/trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

/// ASCII lower-casing.
std::string ToLower(std::string_view s);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Renders 1234567 as "1,234,567".
std::string WithThousandsSep(int64_t value);

/// Strict full-string integer parse; false on any trailing garbage.
bool ParseInt64(std::string_view s, int64_t* out);

/// Strict full-string floating-point parse.
bool ParseDouble(std::string_view s, double* out);

}  // namespace spa

#endif  // SPA_COMMON_STRING_UTIL_H_
