#ifndef SPA_COMMON_SIM_CLOCK_H_
#define SPA_COMMON_SIM_CLOCK_H_

#include <cstdint>

/// \file
/// Simulated wall-clock used by the LifeLog store, campaign runner and the
/// agent scheduler. Time is microseconds since an arbitrary epoch; using a
/// logical clock keeps every experiment deterministic.

namespace spa {

/// Simulated timestamp, microseconds since epoch.
using TimeMicros = int64_t;

constexpr TimeMicros kMicrosPerSecond = 1'000'000;
constexpr TimeMicros kMicrosPerMinute = 60 * kMicrosPerSecond;
constexpr TimeMicros kMicrosPerHour = 60 * kMicrosPerMinute;
constexpr TimeMicros kMicrosPerDay = 24 * kMicrosPerHour;

/// \brief Monotonic simulated clock.
class SimClock {
 public:
  explicit SimClock(TimeMicros start = 0) : now_(start) {}

  TimeMicros now() const { return now_; }

  /// Advances the clock; negative deltas are ignored (monotonicity).
  void Advance(TimeMicros delta) {
    if (delta > 0) now_ += delta;
  }

  void AdvanceDays(double days) {
    Advance(static_cast<TimeMicros>(days * static_cast<double>(kMicrosPerDay)));
  }

 private:
  TimeMicros now_;
};

}  // namespace spa

#endif  // SPA_COMMON_SIM_CLOCK_H_
