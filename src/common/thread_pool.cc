#include "common/thread_pool.h"

#include <algorithm>

namespace spa {

ThreadPool::ThreadPool(size_t threads) {
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  task_available_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  task_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

size_t ThreadPool::pending_tasks() const {
  std::lock_guard<std::mutex> lock(mu_);
  return tasks_.size();
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_available_.wait(lock,
                           [this] { return shutdown_ || !tasks_.empty(); });
      if (tasks_.empty()) {
        if (shutdown_) return;
        continue;
      }
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
      if (in_flight_ == 0) all_done_.notify_all();
    }
  }
}

void ParallelFor(ThreadPool* pool, size_t n,
                 const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  const size_t workers = pool->thread_count();
  const size_t chunk = std::max<size_t>(1, (n + workers - 1) / workers);
  for (size_t begin = 0; begin < n; begin += chunk) {
    const size_t end = std::min(n, begin + chunk);
    pool->Submit([begin, end, &fn] {
      for (size_t i = begin; i < end; ++i) fn(i);
    });
  }
  pool->Wait();
}

}  // namespace spa
