#include "common/string_util.h"

#include <cctype>
#include <charconv>
#include <cstdarg>
#include <cstdio>

namespace spa {

std::vector<std::string> Split(std::string_view s, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::string WithThousandsSep(int64_t value) {
  const bool neg = value < 0;
  uint64_t v = neg ? static_cast<uint64_t>(-(value + 1)) + 1
                   : static_cast<uint64_t>(value);
  std::string digits = std::to_string(v);
  std::string out;
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count > 0 && count % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++count;
  }
  if (neg) out.push_back('-');
  return std::string(out.rbegin(), out.rend());
}

bool ParseInt64(std::string_view s, int64_t* out) {
  const auto [ptr, ec] =
      std::from_chars(s.data(), s.data() + s.size(), *out);
  return ec == std::errc() && ptr == s.data() + s.size();
}

bool ParseDouble(std::string_view s, double* out) {
  const auto [ptr, ec] =
      std::from_chars(s.data(), s.data() + s.size(), *out);
  return ec == std::errc() && ptr == s.data() + s.size();
}

}  // namespace spa
