#include "common/workspace_pool.h"

#include <bit>
#include <cstdlib>

#include "common/check.h"

namespace spa {

WorkspacePool::~WorkspacePool() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& bucket : free_) {
    for (void* block : bucket) std::free(block);
  }
}

size_t WorkspacePool::ClassIndex(size_t bytes) {
  if (bytes <= kPageBytes) return 0;
  const size_t pages =
      std::bit_ceil((bytes + kPageBytes - 1) / kPageBytes);
  return static_cast<size_t>(std::countr_zero(pages));
}

WorkspaceBlock WorkspacePool::Acquire(size_t min_bytes) {
  const size_t cls = ClassIndex(min_bytes);
  const size_t capacity = kPageBytes << cls;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (cls < free_.size() && !free_[cls].empty()) {
      void* data = free_[cls].back();
      free_[cls].pop_back();
      ++stats_.reuses;
      ++stats_.outstanding;
      return {data, capacity};
    }
  }
  void* data = std::aligned_alloc(kPageBytes, capacity);
  SPA_CHECK(data != nullptr);
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.allocations;
  ++stats_.outstanding;
  stats_.resident_bytes += capacity;
  return {data, capacity};
}

void WorkspacePool::Release(WorkspaceBlock block) {
  if (block.data == nullptr) return;
  const size_t cls = ClassIndex(block.capacity);
  SPA_CHECK(block.capacity == (kPageBytes << cls));
  std::lock_guard<std::mutex> lock(mu_);
  if (free_.size() <= cls) free_.resize(cls + 1);
  free_[cls].push_back(block.data);
  SPA_CHECK(stats_.outstanding > 0);
  --stats_.outstanding;
}

WorkspacePoolStats WorkspacePool::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace spa
