#ifndef SPA_COMMON_THREAD_POOL_H_
#define SPA_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

/// \file
/// Fixed-size worker pool used to score user populations in parallel
/// (the paper's "millions of users" scalability claim).

namespace spa {

/// \brief Simple fixed-size thread pool with a blocking task queue.
class ThreadPool {
 public:
  /// Starts `threads` workers (defaults to hardware concurrency, min 1).
  explicit ThreadPool(size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Tasks must not throw.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void Wait();

  size_t thread_count() const { return workers_.size(); }

  /// Tasks submitted but not yet picked up by a worker (monitoring
  /// accessor; note that layers which park one permanent task per
  /// worker — e.g. the streaming pipeline's drain loops — keep this
  /// queue empty and expose their own depth counters instead).
  size_t pending_tasks() const;

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  mutable std::mutex mu_;
  std::condition_variable task_available_;
  std::condition_variable all_done_;
  size_t in_flight_ = 0;
  bool shutdown_ = false;
};

/// Runs `fn(i)` for i in [0, n) across the pool in contiguous chunks and
/// waits for completion. `fn` must be thread-safe.
void ParallelFor(ThreadPool* pool, size_t n,
                 const std::function<void(size_t)>& fn);

}  // namespace spa

#endif  // SPA_COMMON_THREAD_POOL_H_
