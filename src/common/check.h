#ifndef SPA_COMMON_CHECK_H_
#define SPA_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

/// \file
/// Invariant checking. `SPA_CHECK` aborts on violated invariants with a
/// source location; it is for programmer errors, not recoverable failures
/// (those use spa::Status). `SPA_DCHECK` compiles out in NDEBUG builds.

#define SPA_CHECK(cond)                                                    \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::fprintf(stderr, "SPA_CHECK failed at %s:%d: %s\n", __FILE__,    \
                   __LINE__, #cond);                                       \
      std::abort();                                                        \
    }                                                                      \
  } while (false)

#define SPA_CHECK_MSG(cond, msg)                                           \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::fprintf(stderr, "SPA_CHECK failed at %s:%d: %s (%s)\n",         \
                   __FILE__, __LINE__, #cond, msg);                        \
      std::abort();                                                        \
    }                                                                      \
  } while (false)

#ifdef NDEBUG
#define SPA_DCHECK(cond) \
  do {                   \
  } while (false)
#else
#define SPA_DCHECK(cond) SPA_CHECK(cond)
#endif

#endif  // SPA_COMMON_CHECK_H_
