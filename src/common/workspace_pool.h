#ifndef SPA_COMMON_WORKSPACE_POOL_H_
#define SPA_COMMON_WORKSPACE_POOL_H_

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

/// \file
/// Page-aligned free-list workspace pool for per-request scratch.
///
/// The serve hot path needs the same few scratch buffers (candidate
/// accumulators, sort arrays, gather buffers) on every request;
/// allocating them from the heap each time is both a throughput tax
/// and a scaling bottleneck (the allocator serializes threads). The
/// pool hands out page-aligned blocks from power-of-two size-class
/// free lists: after warm-up, `Acquire` is a mutex-protected pop and
/// `Release` a push — no `malloc` on the steady-state path. Modeled on
/// the workspace pools in large-scale GNN serving systems (one block
/// per in-flight request, recycled forever).

namespace spa {

/// A block handed out by the pool. `data` is page-aligned; `capacity`
/// is the usable byte count (>= the requested size).
struct WorkspaceBlock {
  void* data = nullptr;
  size_t capacity = 0;
};

struct WorkspacePoolStats {
  /// Blocks created with the system allocator (pool misses).
  uint64_t allocations = 0;
  /// Acquires served from a free list (no system allocation).
  uint64_t reuses = 0;
  /// Blocks currently handed out.
  uint64_t outstanding = 0;
  /// Bytes resident in the pool (free + outstanding).
  uint64_t resident_bytes = 0;
};

/// \brief Thread-safe free-list pool of page-aligned blocks.
///
/// Blocks are bucketed by power-of-two size class (minimum one page).
/// `Release` must be called with the exact block `Acquire` returned;
/// the pool retains released blocks forever (bounded by the high-water
/// mark of concurrent acquires per class).
class WorkspacePool {
 public:
  static constexpr size_t kPageBytes = 4096;

  WorkspacePool() = default;
  ~WorkspacePool();

  WorkspacePool(const WorkspacePool&) = delete;
  WorkspacePool& operator=(const WorkspacePool&) = delete;

  /// Returns a page-aligned block with capacity >= `min_bytes`
  /// (rounded up to the next power-of-two page multiple). Reuses a
  /// free block of the class when one exists.
  WorkspaceBlock Acquire(size_t min_bytes);

  /// Returns `block` to its size-class free list. No-op for a
  /// default-constructed (null) block.
  void Release(WorkspaceBlock block);

  WorkspacePoolStats stats() const;

 private:
  static size_t ClassIndex(size_t bytes);

  mutable std::mutex mu_;
  /// free_[c] holds released blocks of capacity kPageBytes << c.
  std::vector<std::vector<void*>> free_;
  WorkspacePoolStats stats_;
};

}  // namespace spa

#endif  // SPA_COMMON_WORKSPACE_POOL_H_
