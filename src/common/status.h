#ifndef SPA_COMMON_STATUS_H_
#define SPA_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <utility>
#include <variant>

/// \file
/// Status / Result error model. Library code never throws; fallible
/// operations return `spa::Status` or `spa::Result<T>` (value-or-status).

namespace spa {

/// Machine-readable error category, modeled after the usual database
/// engine conventions (Arrow/RocksDB style).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kFailedPrecondition,
  kResourceExhausted,
  kInternal,
  kIOError,
  kUnimplemented,
};

/// \brief Returns a stable human-readable name for a status code.
const char* StatusCodeName(StatusCode code);

/// \brief Result of a fallible operation: a code plus a contextual message.
///
/// `Status` is cheap to copy in the OK case (empty message). Use the
/// factory functions (`Status::OK()`, `Status::InvalidArgument(...)`, ...)
/// rather than the raw constructor.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// \brief Value-or-Status. Holds either a `T` or a non-OK `Status`.
///
/// Access the value with `value()`/`operator*` only after checking `ok()`;
/// accessing the value of an errored result aborts.
template <typename T>
class Result {
 public:
  /// Implicit from value (OK result).
  Result(T value) : payload_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit from error status. Must not be OK.
  Result(Status status) : payload_(std::move(status)) {}  // NOLINT

  bool ok() const { return std::holds_alternative<T>(payload_); }

  /// Status of the operation; OK when a value is held.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(payload_);
  }

  const T& value() const& { return std::get<T>(payload_); }
  T& value() & { return std::get<T>(payload_); }
  T&& value() && { return std::get<T>(std::move(payload_)); }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value, or `fallback` if this result holds an error.
  T value_or(T fallback) const {
    if (ok()) return value();
    return fallback;
  }

 private:
  std::variant<T, Status> payload_;
};

/// Propagates a non-OK Status from an expression to the caller.
#define SPA_RETURN_IF_ERROR(expr)                  \
  do {                                             \
    ::spa::Status spa_status_ = (expr);            \
    if (!spa_status_.ok()) return spa_status_;     \
  } while (false)

#define SPA_CONCAT_IMPL_(a, b) a##b
#define SPA_CONCAT_(a, b) SPA_CONCAT_IMPL_(a, b)

/// Evaluates a Result<T> expression; on error returns the Status, otherwise
/// move-assigns the value into `lhs` (which may be a declaration).
#define SPA_ASSIGN_OR_RETURN(lhs, expr)                               \
  SPA_ASSIGN_OR_RETURN_IMPL_(SPA_CONCAT_(spa_result_, __LINE__), lhs, \
                             expr)
#define SPA_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                               \
  if (!tmp.ok()) return tmp.status();              \
  lhs = std::move(tmp).value()

}  // namespace spa

#endif  // SPA_COMMON_STATUS_H_
