#ifndef SPA_COMMON_RNG_H_
#define SPA_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

/// \file
/// Deterministic pseudo-random number generation. Every stochastic
/// component in the library takes an explicit seed so that tests and
/// benchmark reproductions are bit-for-bit repeatable.

namespace spa {

/// \brief SplitMix64; used to expand seeds into generator state.
///
/// Reference: Steele, Lea, Flood, "Fast splittable pseudorandom number
/// generators", OOPSLA 2014.
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  /// Next 64 uniformly distributed bits.
  uint64_t Next();

 private:
  uint64_t state_;
};

/// \brief xoshiro256** 1.0 — the library's workhorse generator.
///
/// Passes BigCrush; 2^256-1 period. Seeded via SplitMix64 per the authors'
/// recommendation. A `stream` parameter decorrelates generators that share
/// a seed (e.g. one RNG per campaign).
class Rng {
 public:
  /// Seeds the generator. Distinct (seed, stream) pairs give independent
  /// sequences.
  explicit Rng(uint64_t seed, uint64_t stream = 0);

  /// Uniform 64 random bits.
  uint64_t U64();

  /// Uniform double in [0, 1).
  double Uniform();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Standard normal via Marsaglia polar method.
  double Normal();

  /// Normal with the given mean and standard deviation.
  double Normal(double mean, double stddev);

  /// True with probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Exponential with rate lambda > 0.
  double Exponential(double lambda);

  /// Log-normal: exp(Normal(mu, sigma)).
  double LogNormal(double mu, double sigma);

  /// Poisson-distributed count (Knuth's method; intended for small means).
  int Poisson(double mean);

  /// Zipf-distributed rank in [1, n] with exponent s > 0 (rejection
  /// sampling; O(1) expected time independent of n).
  int64_t Zipf(int64_t n, double s);

  /// Samples an index proportionally to `weights` (non-negative, not all
  /// zero). O(n) per draw.
  size_t Categorical(const std::vector<double>& weights);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    if (v->empty()) return;
    for (size_t i = v->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(UniformInt(0, static_cast<int64_t>(i)));
      std::swap((*v)[i], (*v)[j]);
    }
  }

  /// Samples k distinct indices from [0, n) (k <= n), in random order.
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

 private:
  uint64_t s_[4];
  // Cached second value from the polar method.
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace spa

#endif  // SPA_COMMON_RNG_H_
