#ifndef SPA_COMMON_CLOCK_H_
#define SPA_COMMON_CLOCK_H_

#include <chrono>

/// \file
/// Shared wall-clock timing helper for the serving/index/bench layers
/// (distinct from `sim_clock.h`, the simulated campaign clock).

namespace spa {

/// Seconds elapsed since `start` on the monotonic clock.
inline double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace spa

#endif  // SPA_COMMON_CLOCK_H_
