#ifndef SPA_COMMON_STATS_H_
#define SPA_COMMON_STATS_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

/// \file
/// Streaming statistics and simple histograms used by the evaluator,
/// the serving layers (per-stage latency histograms) and the benchmark
/// harnesses.

namespace spa {

/// \brief Welford online mean/variance plus min/max.
class StreamingStats {
 public:
  void Add(double x);

  size_t count() const { return count_; }
  double mean() const { return count_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  double sum() const { return sum_; }

  /// Merges another accumulator (parallel reduction).
  void Merge(const StreamingStats& other);

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Returns the q-quantile (0<=q<=1) of the data using linear
/// interpolation; copies and sorts internally.
double Quantile(std::vector<double> values, double q);

/// \brief Fixed-width histogram over [lo, hi); out-of-range values clamp
/// to the edge buckets.
class Histogram {
 public:
  Histogram(double lo, double hi, size_t buckets);

  void Add(double x);
  size_t bucket_count() const { return counts_.size(); }
  uint64_t bucket(size_t i) const { return counts_[i]; }
  uint64_t total() const { return total_; }
  double bucket_lo(size_t i) const;
  double bucket_hi(size_t i) const;

  /// Multi-line ASCII rendering (for bench output).
  std::string ToAscii(size_t max_width = 50) const;

 private:
  double lo_;
  double hi_;
  std::vector<uint64_t> counts_;
  uint64_t total_ = 0;
};

/// \brief Fixed-bucket log-scale histogram with lock-free concurrent
/// recording — the latency histogram behind the streaming serving
/// pipeline and the engine's per-stage counters.
///
/// Bucket `i` spans `[lo * r^i, lo * r^(i+1))` with
/// `r = 10^(1/buckets_per_decade)`: the boundaries are fixed by the
/// `(lo, hi, buckets_per_decade)` geometry alone, so histograms with
/// the same geometry merge bucket-by-bucket. Values below `lo` clamp
/// into the first bucket and values at or above `hi` into the last —
/// recording never drops a sample. `Add` is one relaxed `fetch_add` on
/// the target bucket: any number of concurrent recorders, and the
/// per-bucket counts (and thus `total()`) are exactly the number of
/// `Add` calls no matter how the threads interleave.
class LogHistogram {
 public:
  /// Default latency geometry: 100 ns .. 100 s, 8 buckets per decade
  /// (each bucket a factor of 10^(1/8) ~ 1.33 wide).
  LogHistogram() : LogHistogram(1e-7, 100.0, 8) {}
  LogHistogram(double lo, double hi, size_t buckets_per_decade);

  /// Copying snapshots the counts (per-bucket relaxed loads: a copy
  /// taken while recorders run sees every bucket atomically, but not
  /// the histogram as a whole).
  LogHistogram(const LogHistogram& other);
  LogHistogram& operator=(const LogHistogram& other);

  /// Records one value. Thread-safe and lock-free.
  void Add(double x);

  size_t bucket_count() const { return buckets_.size(); }
  uint64_t bucket(size_t i) const;
  /// Geometric bucket boundaries: bucket(i) counts values in
  /// [bucket_lo(i), bucket_hi(i)) (modulo edge clamping).
  double bucket_lo(size_t i) const;
  double bucket_hi(size_t i) const;
  /// Sum over every bucket (== number of Add calls).
  uint64_t total() const;

  /// q-quantile estimate (0 <= q <= 1): log-linear interpolation inside
  /// the bucket where the cumulative count crosses q * total, so the
  /// estimate is exact to within one bucket width (a factor of
  /// 10^(1/buckets_per_decade)). Returns 0 when empty.
  double Quantile(double q) const;

  /// Adds another histogram's counts; geometries must match exactly.
  void Merge(const LogHistogram& other);

  /// Zeroes every bucket (per-bucket relaxed stores). Not a barrier:
  /// a Reset racing concurrent Adds loses or keeps individual samples
  /// nondeterministically — callers that need an exact cut (e.g. the
  /// profiler's epoch banks) must quiesce recorders first, exactly
  /// like the `total() == count` quiescent invariant.
  void Reset();

  double lo() const { return lo_; }
  double hi() const { return hi_; }
  size_t buckets_per_decade() const { return buckets_per_decade_; }

 private:
  size_t BucketIndex(double x) const;

  double lo_ = 0.0;
  double hi_ = 0.0;
  size_t buckets_per_decade_ = 0;
  std::vector<std::atomic<uint64_t>> buckets_;
};

}  // namespace spa

#endif  // SPA_COMMON_STATS_H_
