#ifndef SPA_COMMON_STATS_H_
#define SPA_COMMON_STATS_H_

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

/// \file
/// Streaming statistics and simple histograms used by the evaluator and
/// the benchmark harnesses.

namespace spa {

/// \brief Welford online mean/variance plus min/max.
class StreamingStats {
 public:
  void Add(double x);

  size_t count() const { return count_; }
  double mean() const { return count_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  double sum() const { return sum_; }

  /// Merges another accumulator (parallel reduction).
  void Merge(const StreamingStats& other);

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Returns the q-quantile (0<=q<=1) of the data using linear
/// interpolation; copies and sorts internally.
double Quantile(std::vector<double> values, double q);

/// \brief Fixed-width histogram over [lo, hi); out-of-range values clamp
/// to the edge buckets.
class Histogram {
 public:
  Histogram(double lo, double hi, size_t buckets);

  void Add(double x);
  size_t bucket_count() const { return counts_.size(); }
  uint64_t bucket(size_t i) const { return counts_[i]; }
  uint64_t total() const { return total_; }
  double bucket_lo(size_t i) const;
  double bucket_hi(size_t i) const;

  /// Multi-line ASCII rendering (for bench output).
  std::string ToAscii(size_t max_width = 50) const;

 private:
  double lo_;
  double hi_;
  std::vector<uint64_t> counts_;
  uint64_t total_ = 0;
};

}  // namespace spa

#endif  // SPA_COMMON_STATS_H_
