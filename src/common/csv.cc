#include "common/csv.h"

namespace spa {

namespace {
bool NeedsQuoting(const std::string& field, char delim) {
  for (char c : field) {
    if (c == delim || c == '"' || c == '\n' || c == '\r') return true;
  }
  return false;
}
}  // namespace

void CsvWriter::WriteRow(const std::vector<std::string>& fields) {
  for (size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) (*out_) << delim_;
    const std::string& f = fields[i];
    if (NeedsQuoting(f, delim_)) {
      (*out_) << '"';
      for (char c : f) {
        if (c == '"') (*out_) << '"';
        (*out_) << c;
      }
      (*out_) << '"';
    } else {
      (*out_) << f;
    }
  }
  (*out_) << '\n';
}

Result<std::vector<std::string>> ParseCsvLine(std::string_view line,
                                              char delim) {
  std::vector<std::string> fields;
  std::string current;
  bool in_quotes = false;
  size_t i = 0;
  while (i < line.size()) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current.push_back('"');
          i += 2;
          continue;
        }
        in_quotes = false;
        ++i;
        continue;
      }
      current.push_back(c);
      ++i;
    } else {
      if (c == '"') {
        if (!current.empty()) {
          return Status::InvalidArgument(
              "quote inside unquoted CSV field");
        }
        in_quotes = true;
        ++i;
      } else if (c == delim) {
        fields.push_back(std::move(current));
        current.clear();
        ++i;
      } else if (c == '\r') {
        ++i;  // tolerate CRLF
      } else {
        current.push_back(c);
        ++i;
      }
    }
  }
  if (in_quotes) {
    return Status::InvalidArgument("unterminated quoted CSV field");
  }
  fields.push_back(std::move(current));
  return fields;
}

Result<std::vector<std::vector<std::string>>> ParseCsv(
    std::string_view text, char delim) {
  std::vector<std::vector<std::string>> rows;
  size_t start = 0;
  while (start <= text.size()) {
    if (start == text.size()) break;
    size_t end = text.find('\n', start);
    std::string_view line = (end == std::string_view::npos)
                                ? text.substr(start)
                                : text.substr(start, end - start);
    if (!line.empty() || end != std::string_view::npos) {
      if (!line.empty()) {
        SPA_ASSIGN_OR_RETURN(std::vector<std::string> fields,
                             ParseCsvLine(line, delim));
        rows.push_back(std::move(fields));
      }
    }
    if (end == std::string_view::npos) break;
    start = end + 1;
  }
  return rows;
}

}  // namespace spa
