#ifndef SPA_COMMON_PROFILER_H_
#define SPA_COMMON_PROFILER_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.h"

/// \file
/// Leveled hierarchical serving profiler.
///
/// The serving layers attribute time to a fixed catalog of *items*
/// arranged in three levels, in the shape of samgraph's per-stage
/// profiler (L1 whole-op, L2 per-stage, L3 per-stage internals):
///
///  * **L1** — one recording per operation: a single served request,
///    a drained micro-batch, an applied live-update batch.
///  * **L2** — one recording per stage execution of the serving
///    dataflow: cache-lookup, candidate-gen, blend, rerank, explain.
///  * **L3** — stage internals: per-component candidate fetches, the
///    rerank score loop vs its sort, and per-shard-group apply times
///    inside `ApplyInteractions`.
///
/// Every item keeps a lock-free `{count, total, max, LogHistogram}`
/// accumulator twice: a **cumulative** bank (since construction) and a
/// **current-epoch** bank that `AdvanceEpoch()` reseals, so consumers
/// can report both all-time and per-epoch quantiles. `Record` is
/// level-gated by one relaxed atomic load — items above the configured
/// level cost a branch and nothing else.
///
/// Thread-safety: `Record` may be called from any number of threads
/// concurrently (relaxed atomics + the lock-free histogram).
/// `Snapshot`/`ExportJson` may run concurrently with recorders and see
/// per-counter-atomic (not mutually consistent) values; the
/// `histogram.total() == count` equality is a quiescent invariant.
/// `AdvanceEpoch` must not race recorders that are mid-`Record`
/// (callers advance between batches / scenarios, i.e. quiesced).
///
/// The JSON export schema is documented in `docs/METRICS.md`
/// (`BENCH_serving.json["stages"]` carries it).

namespace spa {

/// \brief Profiling granularity. Each level includes the ones below
/// it: kL3 records everything, kOff records nothing.
enum class ProfilerLevel : int { kOff = 0, kL1 = 1, kL2 = 2, kL3 = 3 };

/// \brief The fixed item catalog. Names and levels are stable API —
/// `docs/METRICS.md` documents them and the bench exports them; append
/// new items rather than renumbering.
enum class ProfilerItem : int {
  // L1 — whole operations.
  kRequestServe = 0,  ///< one per-request serve (incl. cache hits)
  kBatchServe,        ///< one (micro-)batch drained through the engine
  kUpdateApply,       ///< one ApplyInteractions call, end to end
  // L2 — serving-dataflow stages.
  kStageCacheLookup,   ///< response-cache probe (hits and misses)
  kStageCandidateGen,  ///< per-component candidate fetch fan-out
  kStageBlend,         ///< hybrid normalize + weighted accumulate
  kStageRerank,        ///< emotional re-score + sort + truncate
  kStageExplain,       ///< response materialization + breakdowns
  // L3 — stage internals.
  kCandidateComponent,   ///< one component's candidate fetch
  kRerankScore,          ///< the re-score loop of one request
  kRerankSort,           ///< the sort + truncate of one request
  kApplyUserShardGroup,  ///< one user-shard group's batch apply
  kApplyItemShardGroup,  ///< one item-shard group's batch apply
  kWorkspaceAcquire,     ///< pooled serve-scratch checkout
  kWorkspaceRelease,     ///< pooled serve-scratch return
  kKernelScoreAccumulate,  ///< kernel blend accumulation of one request
  kNumItems,             ///< sentinel, not an item
};

inline constexpr size_t kProfilerItemCount =
    static_cast<size_t>(ProfilerItem::kNumItems);

/// Stable dotted item name, e.g. "stage.candidate_gen".
const char* ProfilerItemName(ProfilerItem item);
/// The level an item records at.
ProfilerLevel ProfilerItemLevel(ProfilerItem item);

/// \brief Point-in-time copy of one item's accumulator bank.
struct ProfilerItemSnapshot {
  ProfilerItem item = ProfilerItem::kRequestServe;
  const char* name = "";
  int level = 0;
  uint64_t count = 0;
  double total_seconds = 0.0;
  double max_seconds = 0.0;
  /// Histogram quantile estimates in seconds (0 when count == 0).
  double p50_seconds = 0.0;
  double p95_seconds = 0.0;
  double p99_seconds = 0.0;
  /// Full log-scale histogram snapshot (seconds; default geometry —
  /// merge bucket-by-bucket to aggregate across engines).
  LogHistogram histogram;
};

/// \brief Snapshot of every item at or below a level.
struct ProfilerSnapshot {
  uint64_t epochs = 0;  ///< AdvanceEpoch calls so far
  std::vector<ProfilerItemSnapshot> items;
};

/// \brief The leveled profiler. One instance per engine.
class Profiler {
 public:
  explicit Profiler(ProfilerLevel level = ProfilerLevel::kL3);

  ProfilerLevel level() const {
    return static_cast<ProfilerLevel>(
        level_.load(std::memory_order_relaxed));
  }
  void set_level(ProfilerLevel level) {
    level_.store(static_cast<int>(level), std::memory_order_relaxed);
  }

  /// True when `item`'s level is enabled — callers wrap expensive
  /// timing (extra clock reads) in this check.
  bool enabled(ProfilerItem item) const {
    return static_cast<int>(ProfilerItemLevel(item)) <=
           level_.load(std::memory_order_relaxed);
  }

  /// Records one duration against `item` (no-op above the configured
  /// level). Lock-free; updates the cumulative and the current-epoch
  /// bank.
  void Record(ProfilerItem item, double seconds);

  /// Seals the current epoch: bumps the epoch counter and zeroes the
  /// per-epoch banks. Snapshot the epoch bank *before* advancing;
  /// recorders must be quiescent (see file comment).
  void AdvanceEpoch();
  uint64_t epochs() const {
    return epochs_.load(std::memory_order_relaxed);
  }

  /// Items at or below `max_level`; `current_epoch` selects the
  /// per-epoch banks instead of the cumulative ones.
  ProfilerSnapshot Snapshot(ProfilerLevel max_level,
                            bool current_epoch = false) const;

  /// The items array of the stable JSON export (schema:
  /// `docs/METRICS.md`), one object per item at or below `max_level`:
  /// `{"name", "level", "count", "total_seconds", "max_seconds",
  /// "p50_us", "p95_us", "p99_us"}`. `indent` spaces prefix each
  /// element line.
  std::string ExportItemsJson(ProfilerLevel max_level,
                              int indent = 4) const;

  /// Full export object: `{"level", "epochs", "items": [...]}`.
  std::string ExportJson(ProfilerLevel max_level, int indent = 2) const;

 private:
  /// One lock-free accumulator (same shape as the engine's former
  /// per-stage counters: serving workers record concurrently, so a
  /// mutex here would serialize the hot path being measured).
  struct Bank {
    std::atomic<uint64_t> count{0};
    std::atomic<uint64_t> total_nanos{0};
    std::atomic<uint64_t> max_nanos{0};
    LogHistogram histogram;
  };
  struct Item {
    Bank cumulative;
    Bank epoch;
  };

  static void RecordInto(Bank* bank, uint64_t nanos, double seconds);

  std::atomic<int> level_;
  std::atomic<uint64_t> epochs_{0};
  std::array<Item, kProfilerItemCount> items_;
};

}  // namespace spa

#endif  // SPA_COMMON_PROFILER_H_
