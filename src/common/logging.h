#ifndef SPA_COMMON_LOGGING_H_
#define SPA_COMMON_LOGGING_H_

#include <sstream>
#include <string>

/// \file
/// Minimal leveled logging. Usage: `SPA_LOG(INFO) << "trained " << n;`
/// Messages below the global minimum level are discarded without
/// formatting cost for the stream arguments' side effects (arguments are
/// still evaluated; keep them cheap).

namespace spa {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the global minimum level (default kInfo).
void SetMinLogLevel(LogLevel level);
LogLevel MinLogLevel();

const char* LogLevelName(LogLevel level);

/// \brief One log statement; flushes on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace spa

#define SPA_LOG(severity)                                             \
  ::spa::LogMessage(::spa::LogLevel::k##severity, __FILE__, __LINE__) \
      .stream()

#endif  // SPA_COMMON_LOGGING_H_
