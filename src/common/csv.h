#ifndef SPA_COMMON_CSV_H_
#define SPA_COMMON_CSV_H_

#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

/// \file
/// RFC-4180-ish CSV reading/writing used by the LifeLog store, the bench
/// harnesses (series output) and SUM serialization. Fields containing the
/// delimiter, quotes or newlines are quoted; embedded quotes are doubled.

namespace spa {

/// \brief Streams rows to an std::ostream.
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream* out, char delim = ',')
      : out_(out), delim_(delim) {}

  /// Writes one row; escapes fields as needed.
  void WriteRow(const std::vector<std::string>& fields);

  /// Convenience: writes a row of already-stringified cells.
  template <typename... Ts>
  void WriteCells(const Ts&... cells) {
    WriteRow({ToCell(cells)...});
  }

 private:
  template <typename T>
  static std::string ToCell(const T& v) {
    if constexpr (std::is_convertible_v<T, std::string>) {
      return std::string(v);
    } else {
      return std::to_string(v);
    }
  }

  std::ostream* out_;
  char delim_;
};

/// Parses a single CSV line into fields (handles quoting). Returns an
/// error when quoting is malformed.
Result<std::vector<std::string>> ParseCsvLine(std::string_view line,
                                              char delim = ',');

/// Reads a whole CSV document (no embedded newlines inside quoted fields
/// across buffer boundaries — rows are line-delimited in all our files).
Result<std::vector<std::vector<std::string>>> ParseCsv(
    std::string_view text, char delim = ',');

}  // namespace spa

#endif  // SPA_COMMON_CSV_H_
