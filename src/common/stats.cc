#include "common/stats.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/string_util.h"

namespace spa {

void StreamingStats::Add(double x) {
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double StreamingStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double StreamingStats::stddev() const { return std::sqrt(variance()); }

void StreamingStats::Merge(const StreamingStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double n1 = static_cast<double>(count_);
  const double n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = n1 + n2;
  mean_ += delta * n2 / n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double Quantile(std::vector<double> values, double q) {
  SPA_CHECK(!values.empty());
  SPA_CHECK(q >= 0.0 && q <= 1.0);
  std::sort(values.begin(), values.end());
  if (values.size() == 1) return values[0];
  const double pos = q * static_cast<double>(values.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

Histogram::Histogram(double lo, double hi, size_t buckets)
    : lo_(lo), hi_(hi), counts_(buckets, 0) {
  SPA_CHECK(hi > lo);
  SPA_CHECK(buckets > 0);
}

void Histogram::Add(double x) {
  const double scaled =
      (x - lo_) / (hi_ - lo_) * static_cast<double>(counts_.size());
  int64_t idx = static_cast<int64_t>(std::floor(scaled));
  idx = std::clamp<int64_t>(idx, 0,
                            static_cast<int64_t>(counts_.size()) - 1);
  ++counts_[static_cast<size_t>(idx)];
  ++total_;
}

double Histogram::bucket_lo(size_t i) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(i) /
                   static_cast<double>(counts_.size());
}

double Histogram::bucket_hi(size_t i) const { return bucket_lo(i + 1); }

std::string Histogram::ToAscii(size_t max_width) const {
  uint64_t peak = 0;
  for (uint64_t c : counts_) peak = std::max(peak, c);
  std::string out;
  for (size_t i = 0; i < counts_.size(); ++i) {
    const size_t bar_len =
        peak == 0 ? 0
                  : static_cast<size_t>(static_cast<double>(counts_[i]) /
                                        static_cast<double>(peak) *
                                        static_cast<double>(max_width));
    out += StrFormat("[%8.3f, %8.3f) %8llu |", bucket_lo(i), bucket_hi(i),
                     static_cast<unsigned long long>(counts_[i]));
    out.append(bar_len, '#');
    out.push_back('\n');
  }
  return out;
}

LogHistogram::LogHistogram(double lo, double hi,
                           size_t buckets_per_decade)
    : lo_(lo), hi_(hi), buckets_per_decade_(buckets_per_decade) {
  SPA_CHECK(lo > 0.0);
  SPA_CHECK(hi > lo);
  SPA_CHECK(buckets_per_decade > 0);
  const double decades = std::log10(hi / lo);
  const auto buckets = static_cast<size_t>(
      std::ceil(decades * static_cast<double>(buckets_per_decade) -
                1e-9));
  buckets_ = std::vector<std::atomic<uint64_t>>(
      std::max<size_t>(buckets, 1));
}

LogHistogram::LogHistogram(const LogHistogram& other)
    : lo_(other.lo_),
      hi_(other.hi_),
      buckets_per_decade_(other.buckets_per_decade_),
      buckets_(other.buckets_.size()) {
  for (size_t i = 0; i < buckets_.size(); ++i) {
    buckets_[i].store(other.buckets_[i].load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
  }
}

LogHistogram& LogHistogram::operator=(const LogHistogram& other) {
  if (this == &other) return *this;
  lo_ = other.lo_;
  hi_ = other.hi_;
  buckets_per_decade_ = other.buckets_per_decade_;
  buckets_ = std::vector<std::atomic<uint64_t>>(other.buckets_.size());
  for (size_t i = 0; i < buckets_.size(); ++i) {
    buckets_[i].store(other.buckets_[i].load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
  }
  return *this;
}

size_t LogHistogram::BucketIndex(double x) const {
  if (!(x > lo_)) return 0;  // also catches NaN and non-positives
  if (x >= hi_) return buckets_.size() - 1;  // incl. +infinity
  const auto idx = static_cast<int64_t>(
      std::floor(std::log10(x / lo_) *
                 static_cast<double>(buckets_per_decade_)));
  return static_cast<size_t>(std::clamp<int64_t>(
      idx, 0, static_cast<int64_t>(buckets_.size()) - 1));
}

void LogHistogram::Add(double x) {
  buckets_[BucketIndex(x)].fetch_add(1, std::memory_order_relaxed);
}

uint64_t LogHistogram::bucket(size_t i) const {
  SPA_CHECK(i < buckets_.size());
  return buckets_[i].load(std::memory_order_relaxed);
}

double LogHistogram::bucket_lo(size_t i) const {
  SPA_CHECK(i < buckets_.size());
  return lo_ * std::pow(10.0, static_cast<double>(i) /
                                  static_cast<double>(
                                      buckets_per_decade_));
}

double LogHistogram::bucket_hi(size_t i) const {
  SPA_CHECK(i < buckets_.size());
  return lo_ * std::pow(10.0, static_cast<double>(i + 1) /
                                  static_cast<double>(
                                      buckets_per_decade_));
}

uint64_t LogHistogram::total() const {
  uint64_t sum = 0;
  for (const auto& b : buckets_) {
    sum += b.load(std::memory_order_relaxed);
  }
  return sum;
}

double LogHistogram::Quantile(double q) const {
  SPA_CHECK(q >= 0.0 && q <= 1.0);
  const uint64_t n = total();
  if (n == 0) return 0.0;
  const double target = q * static_cast<double>(n);
  double cum = 0.0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    const auto count = static_cast<double>(
        buckets_[i].load(std::memory_order_relaxed));
    if (count == 0.0) continue;
    if (cum + count >= target) {
      const double frac =
          std::clamp((target - cum) / count, 0.0, 1.0);
      // Log-linear interpolation within the bucket.
      return bucket_lo(i) *
             std::pow(bucket_hi(i) / bucket_lo(i), frac);
    }
    cum += count;
  }
  return bucket_hi(buckets_.size() - 1);
}

void LogHistogram::Reset() {
  for (auto& b : buckets_) {
    b.store(0, std::memory_order_relaxed);
  }
}

void LogHistogram::Merge(const LogHistogram& other) {
  SPA_CHECK(lo_ == other.lo_ && hi_ == other.hi_ &&
            buckets_per_decade_ == other.buckets_per_decade_);
  for (size_t i = 0; i < buckets_.size(); ++i) {
    buckets_[i].fetch_add(
        other.buckets_[i].load(std::memory_order_relaxed),
        std::memory_order_relaxed);
  }
}

}  // namespace spa
