#ifndef SPA_EIT_EMOTION_H_
#define SPA_EIT_EMOTION_H_

#include <array>
#include <cstdint>
#include <string_view>

/// \file
/// The emotional attribute vocabulary of the business case (§5.1): ten
/// attributes, each carrying a valence — "the degree of attraction or
/// aversion that a person feels toward a specific object or event".

namespace spa::eit {

/// Direction of an emotional attribute's pull on behaviour.
enum class Valence : uint8_t {
  kPositive,  ///< attraction (activating)
  kNegative,  ///< aversion (inhibiting)
};

/// The ten emotional attributes used in the emagister deployment:
/// "enthusiastic, motivated, empathic, hopeful, lively, stimulated,
/// impatient, frightened, shy and apathetic" (§5.1).
enum class EmotionalAttribute : uint8_t {
  kEnthusiastic = 0,
  kMotivated,
  kEmpathic,
  kHopeful,
  kLively,
  kStimulated,
  kImpatient,
  kFrightened,
  kShy,
  kApathetic,
};

inline constexpr size_t kNumEmotionalAttributes = 10;

/// All attributes in declaration order.
constexpr std::array<EmotionalAttribute, kNumEmotionalAttributes>
AllEmotionalAttributes() {
  return {EmotionalAttribute::kEnthusiastic, EmotionalAttribute::kMotivated,
          EmotionalAttribute::kEmpathic,     EmotionalAttribute::kHopeful,
          EmotionalAttribute::kLively,       EmotionalAttribute::kStimulated,
          EmotionalAttribute::kImpatient,    EmotionalAttribute::kFrightened,
          EmotionalAttribute::kShy,          EmotionalAttribute::kApathetic};
}

/// Stable lowercase name (matches the paper's wording).
std::string_view EmotionalAttributeName(EmotionalAttribute attr);

/// Parses a name back to the attribute; returns false on unknown names.
bool ParseEmotionalAttribute(std::string_view name,
                             EmotionalAttribute* out);

/// Valence of each attribute: the first six are attraction-valenced,
/// the last four aversion-valenced.
Valence ValenceOf(EmotionalAttribute attr);

/// +1 for positive valence, -1 for negative (activation sign).
double ValenceSign(EmotionalAttribute attr);

std::string_view ValenceName(Valence v);

}  // namespace spa::eit

#endif  // SPA_EIT_EMOTION_H_
