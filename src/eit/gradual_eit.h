#ifndef SPA_EIT_GRADUAL_EIT_H_
#define SPA_EIT_GRADUAL_EIT_H_

#include <array>
#include <cstdint>
#include <vector>

#include "common/status.h"
#include "eit/question_bank.h"

/// \file
/// The Gradual EIT engine (§3 stage 1, §5.2): the test is administered
/// one question per push/newsletter contact, in a "gradual and
/// noninvasive" way; each answer contributes consensus-scored evidence
/// and activates the impacted emotional attributes.

namespace spa::eit {

/// \brief Per-branch and aggregate consensus scores for one respondent.
struct EitScores {
  std::array<double, kNumBranches> branch_score{};    ///< [0,1] each
  std::array<size_t, kNumBranches> branch_answered{};
  std::array<double, kNumAreas> area_score{};
  double total = 0.0;  ///< overall emotional-intelligence quotient [0,1]
  size_t answered = 0;

  /// MSCEIT-style standardized quotient (mean 100, sd 15) assuming the
  /// consensus scores are roughly Beta-distributed around 0.35.
  double Standardized() const;
};

/// \brief Per-user test progress.
class UserEitState {
 public:
  explicit UserEitState(size_t bank_size);

  bool Answered(int32_t question_id) const;
  size_t answered_count() const { return answered_count_; }
  size_t bank_size() const { return answered_.size(); }

  /// Consensus score sum / count per branch, for score computation.
  const std::array<double, kNumBranches>& branch_sum() const {
    return branch_sum_;
  }
  const std::array<size_t, kNumBranches>& branch_count() const {
    return branch_count_;
  }

  /// How often each emotional attribute has been probed for this user.
  const std::array<size_t, kNumEmotionalAttributes>& probe_counts()
      const {
    return probe_counts_;
  }

 private:
  friend class GradualEit;
  std::vector<bool> answered_;
  size_t answered_count_ = 0;
  std::array<double, kNumBranches> branch_sum_{};
  std::array<size_t, kNumBranches> branch_count_{};
  std::array<size_t, kNumEmotionalAttributes> probe_counts_{};
  size_t next_branch_ = 0;  // round-robin cursor
};

/// \brief Engine that selects questions and scores answers.
class GradualEit {
 public:
  explicit GradualEit(const QuestionBank* bank);

  /// Next unanswered question for this user. Branches rotate so the
  /// four abilities accrue evidence evenly; within the branch the item
  /// probing the user's least-covered emotional attributes is chosen
  /// (adaptive coverage: the gradual test explores every attribute
  /// instead of replaying the bank order). NotFound when exhausted.
  spa::Result<int32_t> NextQuestionFor(const UserEitState& state) const;

  /// Outcome of recording one answer.
  struct AnswerOutcome {
    double consensus_score = 0.0;  ///< [0,1] agreement with population
    /// Activation deltas for the impacted emotional attributes:
    /// impact weight x consensus score (the Fig. 4 "discover" signal).
    std::vector<AttributeImpact> activations;
  };

  /// Records `option` for `question_id`; rejects repeats/bad ids.
  spa::Result<AnswerOutcome> RecordAnswer(UserEitState* state,
                                          int32_t question_id,
                                          size_t option) const;

  /// Current scores (consensus means per branch, areas, total).
  EitScores ScoresFor(const UserEitState& state) const;

  const QuestionBank& bank() const { return *bank_; }

 private:
  const QuestionBank* bank_;
};

}  // namespace spa::eit

#endif  // SPA_EIT_GRADUAL_EIT_H_
