#include "eit/question_bank.h"

#include <algorithm>

#include "common/check.h"
#include "common/rng.h"
#include "common/string_util.h"

namespace spa::eit {

namespace {

// Item text templates per task section; {} is filled with a stimulus.
constexpr std::string_view kTemplates[kNumTaskSections] = {
    "How much %s is expressed in this face?",
    "How much %s does this landscape photograph convey?",
    "How useful is feeling %s when meeting new colleagues?",
    "Which sensations accompany feeling %s?",
    "A feeling of %s most likely changes into what under stress?",
    "Which blend of feelings contains %s?",
    "How effective is this action for preserving a feeling of %s?",
    "How effective is this response for handling a %s friend?",
};

}  // namespace

size_t EitQuestion::ModalOption() const {
  return static_cast<size_t>(
      std::max_element(consensus.begin(), consensus.end()) -
      consensus.begin());
}

QuestionBank QuestionBank::Generate(size_t per_section, uint64_t seed) {
  SPA_CHECK(per_section > 0);
  Rng rng(seed);
  QuestionBank bank;
  bank.questions_.reserve(per_section * kNumTaskSections);

  const auto attrs = AllEmotionalAttributes();
  int32_t next_id = 0;
  for (size_t s = 0; s < kNumTaskSections; ++s) {
    const TaskSection& section = TaskSections()[s];
    for (size_t q = 0; q < per_section; ++q) {
      EitQuestion item;
      item.id = next_id++;
      item.branch = section.branch;
      item.section = static_cast<int32_t>(s);

      // Stimulus attribute drives both the text and the primary impact.
      const EmotionalAttribute primary =
          attrs[static_cast<size_t>(rng.UniformInt(
              0, static_cast<int64_t>(attrs.size()) - 1))];
      item.text = StrFormat(
          std::string(kTemplates[s]).c_str(),
          std::string(EmotionalAttributeName(primary)).c_str());

      // Consensus distribution: one dominant option plus noise mass.
      const size_t dominant = static_cast<size_t>(
          rng.UniformInt(0, kOptionsPerQuestion - 1));
      double total = 0.0;
      for (size_t o = 0; o < kOptionsPerQuestion; ++o) {
        const double mass =
            (o == dominant) ? rng.Uniform(0.9, 2.0) : rng.Uniform(0.05, 0.4);
        item.consensus[o] = mass;
        total += mass;
      }
      for (double& c : item.consensus) c /= total;

      // 1-3 impacted attributes; the primary always included.
      item.impacts.push_back({primary, rng.Uniform(0.6, 1.0)});
      const int extra = static_cast<int>(rng.UniformInt(0, 2));
      for (int e = 0; e < extra; ++e) {
        const EmotionalAttribute other =
            attrs[static_cast<size_t>(rng.UniformInt(
                0, static_cast<int64_t>(attrs.size()) - 1))];
        const bool duplicate =
            std::any_of(item.impacts.begin(), item.impacts.end(),
                        [other](const AttributeImpact& i) {
                          return i.attribute == other;
                        });
        if (!duplicate) {
          item.impacts.push_back({other, rng.Uniform(0.2, 0.6)});
        }
      }

      bank.by_branch_[static_cast<size_t>(section.branch)].push_back(
          item.id);
      bank.questions_.push_back(std::move(item));
    }
  }
  return bank;
}

spa::Result<const EitQuestion*> QuestionBank::ById(int32_t id) const {
  if (id < 0 || static_cast<size_t>(id) >= questions_.size()) {
    return spa::Status::NotFound(
        spa::StrFormat("no EIT question with id %d", id));
  }
  return &questions_[static_cast<size_t>(id)];
}

const std::vector<int32_t>& QuestionBank::BranchItems(Branch b) const {
  return by_branch_[static_cast<size_t>(b)];
}

}  // namespace spa::eit
