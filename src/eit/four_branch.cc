#include "eit/four_branch.h"

namespace spa::eit {

const std::array<TaskSection, kNumTaskSections>& TaskSections() {
  static const std::array<TaskSection, kNumTaskSections> kSections = {{
      {"Faces", Branch::kPerceiving},
      {"Pictures", Branch::kPerceiving},
      {"Facilitation", Branch::kFacilitating},
      {"Sensations", Branch::kFacilitating},
      {"Changes", Branch::kUnderstanding},
      {"Blends", Branch::kUnderstanding},
      {"Emotion Management", Branch::kManaging},
      {"Emotional Relations", Branch::kManaging},
  }};
  return kSections;
}

std::string_view BranchName(Branch b) {
  switch (b) {
    case Branch::kPerceiving:
      return "Perceiving Emotions";
    case Branch::kFacilitating:
      return "Facilitating Thought";
    case Branch::kUnderstanding:
      return "Understanding Emotions";
    case Branch::kManaging:
      return "Managing Emotions";
  }
  return "unknown";
}

std::string_view AreaName(Area a) {
  return a == Area::kExperiential ? "Experiential" : "Strategic";
}

std::string_view BranchDescription(Branch b) {
  switch (b) {
    case Branch::kPerceiving:
      return "ability to perceive emotions in oneself and others, as "
             "well as in objects, art and stories";
    case Branch::kFacilitating:
      return "ability to generate and use emotions to facilitate "
             "thinking and communicate feelings";
    case Branch::kUnderstanding:
      return "ability to understand emotional information, how emotions "
             "combine and progress through relationship transitions";
    case Branch::kManaging:
      return "ability to be open to feelings and to manage them in "
             "oneself and others to promote personal growth";
  }
  return "unknown";
}

Area AreaOf(Branch b) {
  switch (b) {
    case Branch::kPerceiving:
    case Branch::kFacilitating:
      return Area::kExperiential;
    case Branch::kUnderstanding:
    case Branch::kManaging:
      return Area::kStrategic;
  }
  return Area::kExperiential;
}

}  // namespace spa::eit
