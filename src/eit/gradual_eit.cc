#include "eit/gradual_eit.h"

#include <algorithm>

#include "common/check.h"
#include "common/string_util.h"

namespace spa::eit {

double EitScores::Standardized() const {
  // Consensus-score means cluster near the modal endorsement mass; map
  // [0,1] to an IQ-like scale anchored at total=0.35 -> 100.
  return 100.0 + (total - 0.35) * 150.0;
}

UserEitState::UserEitState(size_t bank_size)
    : answered_(bank_size, false) {}

bool UserEitState::Answered(int32_t question_id) const {
  SPA_DCHECK(question_id >= 0 &&
             static_cast<size_t>(question_id) < answered_.size());
  return answered_[static_cast<size_t>(question_id)];
}

GradualEit::GradualEit(const QuestionBank* bank) : bank_(bank) {
  SPA_CHECK(bank != nullptr);
}

spa::Result<int32_t> GradualEit::NextQuestionFor(
    const UserEitState& state) const {
  if (state.bank_size() != bank_->size()) {
    return spa::Status::InvalidArgument(
        "state was created for a different bank");
  }
  // Round-robin across branches starting at the user's cursor so that
  // single-question contacts still cover all four abilities over time;
  // within a branch, prefer the item that probes the user's
  // least-covered emotional attributes.
  for (size_t offset = 0; offset < kNumBranches; ++offset) {
    const size_t b = (state.next_branch_ + offset) % kNumBranches;
    int32_t best_id = -1;
    double best_novelty = -1.0;
    for (int32_t id : bank_->BranchItems(static_cast<Branch>(b))) {
      if (state.Answered(id)) continue;
      const EitQuestion& q =
          *bank_->ById(id).value();  // ids are valid by construction
      double novelty = 0.0;
      for (const AttributeImpact& impact : q.impacts) {
        const size_t probes = state.probe_counts()[static_cast<size_t>(
            impact.attribute)];
        novelty +=
            impact.weight / (1.0 + static_cast<double>(probes));
      }
      if (novelty > best_novelty) {
        best_novelty = novelty;
        best_id = id;
      }
    }
    if (best_id >= 0) return best_id;
  }
  return spa::Status::NotFound("question bank exhausted for this user");
}

spa::Result<GradualEit::AnswerOutcome> GradualEit::RecordAnswer(
    UserEitState* state, int32_t question_id, size_t option) const {
  if (option >= kOptionsPerQuestion) {
    return spa::Status::InvalidArgument(
        spa::StrFormat("option %zu out of range", option));
  }
  SPA_ASSIGN_OR_RETURN(const EitQuestion* q, bank_->ById(question_id));
  if (state->Answered(question_id)) {
    return spa::Status::AlreadyExists(
        spa::StrFormat("question %d already answered", question_id));
  }

  const double score = q->consensus[option];
  state->answered_[static_cast<size_t>(question_id)] = true;
  ++state->answered_count_;
  const size_t b = static_cast<size_t>(q->branch);
  state->branch_sum_[b] += score;
  ++state->branch_count_[b];
  state->next_branch_ = (b + 1) % kNumBranches;
  for (const AttributeImpact& impact : q->impacts) {
    ++state->probe_counts_[static_cast<size_t>(impact.attribute)];
  }

  AnswerOutcome outcome;
  outcome.consensus_score = score;
  outcome.activations.reserve(q->impacts.size());
  for (const AttributeImpact& impact : q->impacts) {
    outcome.activations.push_back(
        {impact.attribute, impact.weight * score});
  }
  return outcome;
}

EitScores GradualEit::ScoresFor(const UserEitState& state) const {
  EitScores scores;
  double total_sum = 0.0;
  size_t total_count = 0;
  for (size_t b = 0; b < kNumBranches; ++b) {
    scores.branch_answered[b] = state.branch_count()[b];
    if (state.branch_count()[b] > 0) {
      scores.branch_score[b] =
          state.branch_sum()[b] /
          static_cast<double>(state.branch_count()[b]);
    }
    total_sum += state.branch_sum()[b];
    total_count += state.branch_count()[b];
  }
  for (size_t a = 0; a < kNumAreas; ++a) {
    double sum = 0.0;
    size_t cnt = 0;
    for (Branch b : AllBranches()) {
      if (static_cast<size_t>(AreaOf(b)) != a) continue;
      const size_t bi = static_cast<size_t>(b);
      if (state.branch_count()[bi] > 0) {
        sum += scores.branch_score[bi];
        ++cnt;
      }
    }
    if (cnt > 0) scores.area_score[a] = sum / static_cast<double>(cnt);
  }
  scores.answered = total_count;
  if (total_count > 0) {
    scores.total = total_sum / static_cast<double>(total_count);
  }
  return scores;
}

}  // namespace spa::eit
