#ifndef SPA_EIT_QUESTION_BANK_H_
#define SPA_EIT_QUESTION_BANK_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "eit/emotion.h"
#include "eit/four_branch.h"

/// \file
/// The Gradual EIT item bank. The real MSCEIT V2.0 item content is
/// proprietary; we generate a bank with the published *structure* (eight
/// task sections across four branches, consensus-scored multiple-choice
/// items) and attach to each item the emotional attributes it activates,
/// which is what the paper's Fig. 4 loop consumes.

namespace spa::eit {

/// Number of response options per item (Likert-style).
inline constexpr size_t kOptionsPerQuestion = 5;

/// How strongly answering an item touches one emotional attribute.
struct AttributeImpact {
  EmotionalAttribute attribute;
  double weight;  ///< in (0, 1]; scaled by the answer's consensus score
};

/// \brief One consensus-scored item.
struct EitQuestion {
  int32_t id = -1;
  Branch branch = Branch::kPerceiving;
  int32_t section = 0;  ///< index into TaskSections()
  std::string text;
  /// General-consensus scoring weights: the fraction of the norming
  /// population endorsing each option. Sums to 1.
  std::array<double, kOptionsPerQuestion> consensus{};
  /// Emotional attributes this item activates when answered.
  std::vector<AttributeImpact> impacts;

  /// Index of the modal (most-endorsed) option.
  size_t ModalOption() const;
};

/// \brief Deterministic generated item bank.
class QuestionBank {
 public:
  /// Generates `per_section` items for each of the eight task sections.
  static QuestionBank Generate(size_t per_section, uint64_t seed);

  size_t size() const { return questions_.size(); }
  const EitQuestion& question(size_t i) const { return questions_[i]; }

  /// Item by id (ids are dense, 0..size-1).
  spa::Result<const EitQuestion*> ById(int32_t id) const;

  /// Ids of all items in a branch.
  const std::vector<int32_t>& BranchItems(Branch b) const;

 private:
  std::vector<EitQuestion> questions_;
  std::array<std::vector<int32_t>, kNumBranches> by_branch_;
};

}  // namespace spa::eit

#endif  // SPA_EIT_QUESTION_BANK_H_
