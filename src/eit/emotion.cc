#include "eit/emotion.h"

namespace spa::eit {

std::string_view EmotionalAttributeName(EmotionalAttribute attr) {
  switch (attr) {
    case EmotionalAttribute::kEnthusiastic:
      return "enthusiastic";
    case EmotionalAttribute::kMotivated:
      return "motivated";
    case EmotionalAttribute::kEmpathic:
      return "empathic";
    case EmotionalAttribute::kHopeful:
      return "hopeful";
    case EmotionalAttribute::kLively:
      return "lively";
    case EmotionalAttribute::kStimulated:
      return "stimulated";
    case EmotionalAttribute::kImpatient:
      return "impatient";
    case EmotionalAttribute::kFrightened:
      return "frightened";
    case EmotionalAttribute::kShy:
      return "shy";
    case EmotionalAttribute::kApathetic:
      return "apathetic";
  }
  return "unknown";
}

bool ParseEmotionalAttribute(std::string_view name,
                             EmotionalAttribute* out) {
  for (EmotionalAttribute attr : AllEmotionalAttributes()) {
    if (EmotionalAttributeName(attr) == name) {
      *out = attr;
      return true;
    }
  }
  return false;
}

Valence ValenceOf(EmotionalAttribute attr) {
  switch (attr) {
    case EmotionalAttribute::kEnthusiastic:
    case EmotionalAttribute::kMotivated:
    case EmotionalAttribute::kEmpathic:
    case EmotionalAttribute::kHopeful:
    case EmotionalAttribute::kLively:
    case EmotionalAttribute::kStimulated:
      return Valence::kPositive;
    case EmotionalAttribute::kImpatient:
    case EmotionalAttribute::kFrightened:
    case EmotionalAttribute::kShy:
    case EmotionalAttribute::kApathetic:
      return Valence::kNegative;
  }
  return Valence::kPositive;
}

double ValenceSign(EmotionalAttribute attr) {
  return ValenceOf(attr) == Valence::kPositive ? 1.0 : -1.0;
}

std::string_view ValenceName(Valence v) {
  return v == Valence::kPositive ? "positive" : "negative";
}

}  // namespace spa::eit
