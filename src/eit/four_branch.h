#ifndef SPA_EIT_FOUR_BRANCH_H_
#define SPA_EIT_FOUR_BRANCH_H_

#include <array>
#include <cstdint>
#include <string_view>

/// \file
/// The Four-Branch Model of Emotional Intelligence (Table 1 of the
/// paper), as operationalized by the MSCEIT V2.0 (Mayer, Salovey,
/// Caruso): four ability branches, each measured by two task sections,
/// grouped into the Experiential and Strategic areas.

namespace spa::eit {

/// The four ability branches.
enum class Branch : uint8_t {
  kPerceiving = 0,     ///< perceiving emotions (in faces, pictures)
  kFacilitating = 1,   ///< using emotions to facilitate thought
  kUnderstanding = 2,  ///< understanding emotional chains and blends
  kManaging = 3,       ///< managing emotions in self and relations
};

inline constexpr size_t kNumBranches = 4;

constexpr std::array<Branch, kNumBranches> AllBranches() {
  return {Branch::kPerceiving, Branch::kFacilitating,
          Branch::kUnderstanding, Branch::kManaging};
}

/// MSCEIT area grouping over the branches.
enum class Area : uint8_t {
  kExperiential = 0,  ///< Perceiving + Facilitating
  kStrategic = 1,     ///< Understanding + Managing
};

inline constexpr size_t kNumAreas = 2;

/// The eight MSCEIT task sections (two per branch).
struct TaskSection {
  std::string_view name;
  Branch branch;
};

inline constexpr size_t kNumTaskSections = 8;

/// Section table in MSCEIT order (A..H).
const std::array<TaskSection, kNumTaskSections>& TaskSections();

std::string_view BranchName(Branch b);
std::string_view AreaName(Area a);

/// One-line ability description per branch (Table 1 wording).
std::string_view BranchDescription(Branch b);

/// Area a branch belongs to.
Area AreaOf(Branch b);

}  // namespace spa::eit

#endif  // SPA_EIT_FOUR_BRANCH_H_
