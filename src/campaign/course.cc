#include "campaign/course.h"

#include <algorithm>

#include "common/check.h"
#include "common/rng.h"
#include "common/string_util.h"

namespace spa::campaign {

namespace {
constexpr std::string_view kTopicNames[kNumTopics] = {
    "business",  "it",        "health",      "languages", "arts",
    "law",       "science",   "education",   "marketing", "finance",
    "tourism",   "sports",    "design",      "engineering",
    "psychology",
};
}  // namespace

CourseCatalog CourseCatalog::Generate(
    size_t n, const sum::AttributeCatalog& attributes, uint64_t seed) {
  Rng rng(seed, /*stream=*/11);
  CourseCatalog catalog;
  catalog.courses_.reserve(n);

  const auto emotional_attrs = eit::AllEmotionalAttributes();

  for (size_t i = 0; i < n; ++i) {
    Course course;
    course.id = static_cast<ItemId>(i);
    course.topic = static_cast<int32_t>(
        rng.UniformInt(0, static_cast<int64_t>(kNumTopics) - 1));
    course.name = spa::StrFormat(
        "%s-course-%zu",
        std::string(kTopicNames[static_cast<size_t>(course.topic)])
            .c_str(),
        i);
    course.price_level = rng.Uniform();
    course.duration_norm = rng.Uniform();
    course.online = rng.Bernoulli(0.6);
    course.certified = rng.Bernoulli(0.5);

    // Emotional resonance: 2-3 strongly resonant attributes, rest low.
    for (double& r : course.emotion_profile) r = rng.Uniform(0.0, 0.25);
    const int strong = static_cast<int>(rng.UniformInt(2, 3));
    for (int s = 0; s < strong; ++s) {
      const size_t a = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(
                                eit::kNumEmotionalAttributes) -
                                1));
      course.emotion_profile[a] = rng.Uniform(0.6, 1.0);
    }

    // Sellable attributes, priority-ordered: the strongest emotional
    // resonances first, then matching subjective arguments.
    std::vector<std::pair<double, size_t>> by_resonance;
    for (size_t a = 0; a < eit::kNumEmotionalAttributes; ++a) {
      by_resonance.emplace_back(course.emotion_profile[a], a);
    }
    std::sort(by_resonance.rbegin(), by_resonance.rend());
    for (size_t s = 0; s < 4; ++s) {
      course.sellable_attributes.push_back(attributes.EmotionalId(
          emotional_attrs[by_resonance[s].second]));
    }
    if (course.price_level < 0.35) {
      course.sellable_attributes.push_back(
          attributes.IdOf("price_sensitivity").value());
    }
    if (course.certified) {
      course.sellable_attributes.push_back(
          attributes.IdOf("certification_value").value());
    }
    if (course.online) {
      course.sellable_attributes.push_back(
          attributes.IdOf("flexibility_importance").value());
    }

    catalog.courses_.push_back(std::move(course));
  }
  return catalog;
}

spa::Result<const Course*> CourseCatalog::ById(ItemId id) const {
  if (id < 0 || static_cast<size_t>(id) >= courses_.size()) {
    return spa::Status::NotFound(
        spa::StrFormat("no course with id %d", id));
  }
  return &courses_[static_cast<size_t>(id)];
}

ml::SparseVector CourseCatalog::ContentFeatures(
    const Course& course) const {
  ml::SparseVector features;
  features.PushBack(course.topic, 1.0);  // topic one-hot
  const int32_t base = static_cast<int32_t>(kNumTopics);
  features.PushBack(base + 0, course.price_level);
  features.PushBack(base + 1, course.duration_norm);
  features.PushBack(base + 2, course.online ? 1.0 : 0.0);
  features.PushBack(base + 3, course.certified ? 1.0 : 0.0);
  return features;
}

}  // namespace spa::campaign
