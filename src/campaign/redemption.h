#ifndef SPA_CAMPAIGN_REDEMPTION_H_
#define SPA_CAMPAIGN_REDEMPTION_H_

#include <vector>

#include "campaign/runner.h"
#include "ml/metrics.h"

/// \file
/// Fig. 6 analytics: the cumulative redemption curve (6a) and the
/// per-campaign predictive scores (6b), computed from campaign
/// outcomes exactly as the paper defines them.

namespace spa::campaign {

/// \brief Aggregate over a set of campaigns.
struct RedemptionReport {
  /// Cumulative redemption curve over the pooled (score, label) pairs.
  std::vector<ml::GainsPoint> curve;
  /// Share of useful impacts captured at 40 % commercial action (the
  /// paper reports > 76 %).
  double captured_at_40 = 0.0;
  /// Base response rate across all targeted users.
  double base_rate = 0.0;
  /// Precision when targeting the top 40 % by score.
  double precision_at_40 = 0.0;
  /// Relative redemption improvement of top-40 %-targeting over an
  /// untargeted blast: precision_at_40 / base_rate - 1 (the paper
  /// reports ~ 90 %).
  double redemption_improvement = 0.0;
  /// Pooled ranking quality.
  double auc = 0.5;
  size_t total_targeted = 0;
  size_t total_useful_impacts = 0;
};

/// Pools outcomes and computes the Fig. 6(a) quantities.
RedemptionReport ComputeRedemption(
    const std::vector<CampaignOutcome>& outcomes, size_t curve_points = 20);

/// \brief One Fig. 6(b) row.
struct CampaignScoreRow {
  int campaign_id = 0;
  Channel channel = Channel::kPush;
  size_t targeted = 0;
  size_t useful_impacts = 0;
  double predictive_score = 0.0;
};

/// Per-campaign predictive scores plus the average row.
std::vector<CampaignScoreRow> PredictiveScores(
    const std::vector<CampaignOutcome>& outcomes);

}  // namespace spa::campaign

#endif  // SPA_CAMPAIGN_REDEMPTION_H_
