#include "campaign/redemption.h"

namespace spa::campaign {

RedemptionReport ComputeRedemption(
    const std::vector<CampaignOutcome>& outcomes, size_t curve_points) {
  RedemptionReport report;
  std::vector<double> scores;
  std::vector<ml::Label> labels;
  for (const CampaignOutcome& outcome : outcomes) {
    scores.insert(scores.end(), outcome.scores.begin(),
                  outcome.scores.end());
    labels.insert(labels.end(), outcome.labels.begin(),
                  outcome.labels.end());
    report.total_targeted += outcome.targeted;
    report.total_useful_impacts += outcome.useful_impacts;
  }
  if (scores.empty()) return report;

  report.curve = ml::CumulativeGains(scores, labels, curve_points);
  report.captured_at_40 = ml::CapturedAt(report.curve, 0.4);
  report.base_rate =
      static_cast<double>(report.total_useful_impacts) /
      static_cast<double>(report.total_targeted);
  report.precision_at_40 = ml::PredictiveScore(scores, labels, 0.4);
  if (report.base_rate > 0.0) {
    report.redemption_improvement =
        report.precision_at_40 / report.base_rate - 1.0;
  }
  report.auc = ml::RocAuc(scores, labels);
  return report;
}

std::vector<CampaignScoreRow> PredictiveScores(
    const std::vector<CampaignOutcome>& outcomes) {
  std::vector<CampaignScoreRow> rows;
  rows.reserve(outcomes.size());
  for (const CampaignOutcome& outcome : outcomes) {
    CampaignScoreRow row;
    row.campaign_id = outcome.campaign_id;
    row.channel = outcome.channel;
    row.targeted = outcome.targeted;
    row.useful_impacts = outcome.useful_impacts;
    row.predictive_score = outcome.PredictiveScore();
    rows.push_back(row);
  }
  return rows;
}

}  // namespace spa::campaign
