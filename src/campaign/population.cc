#include "campaign/population.h"

#include <algorithm>

#include "common/rng.h"
#include "common/string_util.h"

namespace spa::campaign {

eit::EmotionalAttribute LatentUser::DominantEmotion() const {
  const size_t best = static_cast<size_t>(
      std::max_element(emotional.begin(), emotional.end()) -
      emotional.begin());
  return static_cast<eit::EmotionalAttribute>(best);
}

PopulationModel::PopulationModel(PopulationConfig config)
    : config_(config) {}

LatentUser PopulationModel::UserAt(sum::UserId id) const {
  // Each user is an independent deterministic stream of the seed.
  Rng rng(config_.seed, static_cast<uint64_t>(id) + 1);
  LatentUser user;
  user.id = id;

  // Emotional sensibilities: a few strong attributes, rest weak.
  for (double& s : user.emotional) {
    if (rng.Bernoulli(config_.strong_emotion_prob)) {
      s = rng.Uniform(0.6, 0.95);
    } else {
      s = rng.Uniform(0.0, 0.3);
    }
  }

  // Topic interests: sparse Dirichlet-like with 1-3 favourites.
  for (double& t : user.topics) t = rng.Uniform(0.0, 0.2);
  const int favourites = static_cast<int>(rng.UniformInt(1, 3));
  for (int f = 0; f < favourites; ++f) {
    user.topics[static_cast<size_t>(rng.UniformInt(
        0, static_cast<int64_t>(kNumTopics) - 1))] =
        rng.Uniform(0.6, 1.0);
  }

  user.base_propensity = std::clamp(
      rng.LogNormal(-2.2, 0.9) * config_.base_propensity_scale, 0.0,
      0.95);
  // Engaged users open their mail: the open rate is anchored to the
  // same engagement trait that drives transactions (plus noise), which
  // is what makes campaign response predictable from behaviour.
  user.open_rate = std::clamp(
      0.16 + 1.25 * user.base_propensity + rng.Normal(0.0, 0.05), 0.03,
      0.95);
  user.eit_answer_prob = std::clamp(
      rng.Normal(config_.mean_eit_answer_prob, 0.15), 0.0, 1.0);

  user.price_sensitivity = rng.Uniform();
  user.certification_value = rng.Uniform();
  user.flexibility_importance = rng.Uniform();

  user.age_norm = std::clamp(rng.Normal(0.45, 0.18), 0.0, 1.0);
  user.education = rng.Uniform();
  user.income = std::clamp(rng.Normal(0.5, 0.2), 0.0, 1.0);
  user.city_size = rng.Uniform();
  return user;
}

void PopulationModel::InitializeSum(const LatentUser& user,
                                    sum::SmartUserModel* model) const {
  const sum::AttributeCatalog& catalog = model->catalog();
  Rng rng(config_.seed ^ 0xabcdef1234567890ULL,
          static_cast<uint64_t>(user.id) + 1);

  auto set = [&](const char* name, double value) {
    const auto id = catalog.IdOf(name);
    if (id.ok()) model->set_value(id.value(), value);
  };

  // Observable socio-demographics (exact).
  set("age_norm", user.age_norm);
  set("education_level", user.education);
  set("income_band", user.income);
  set("city_size", user.city_size);
  set("newsletter_optin", 1.0);
  set("profile_completeness", rng.Uniform(0.3, 1.0));

  // Stated topic interests: noisy versions of the truth (profile forms
  // are unreliable).
  for (size_t t = 0; t < kNumTopics; ++t) {
    const std::string name =
        spa::StrFormat("topic_%s",
                       t == 0    ? "business"
                       : t == 1  ? "it"
                       : t == 2  ? "health"
                       : t == 3  ? "languages"
                       : t == 4  ? "arts"
                       : t == 5  ? "law"
                       : t == 6  ? "science"
                       : t == 7  ? "education"
                       : t == 8  ? "marketing"
                       : t == 9  ? "finance"
                       : t == 10 ? "tourism"
                       : t == 11 ? "sports"
                       : t == 12 ? "design"
                       : t == 13 ? "engineering"
                                 : "psychology");
    const auto id = catalog.IdOf(name);
    if (id.ok()) {
      const double stated =
          std::clamp(user.topics[t] + rng.Normal(0.0, 0.1), 0.0, 1.0);
      model->set_value(id.value(), stated);
    }
  }

  // Stated subjective preferences (noisy).
  set("price_sensitivity",
      std::clamp(user.price_sensitivity + rng.Normal(0.0, 0.15), 0.0,
                 1.0));
  set("certification_value",
      std::clamp(user.certification_value + rng.Normal(0.0, 0.15), 0.0,
                 1.0));
  set("flexibility_importance",
      std::clamp(user.flexibility_importance + rng.Normal(0.0, 0.15),
                 0.0, 1.0));
  // Emotional attributes are deliberately NOT initialized: the platform
  // has to discover them through the Gradual EIT and reinforcement.
}

}  // namespace spa::campaign
