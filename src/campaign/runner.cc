#include "campaign/runner.h"

#include <algorithm>

#include "common/check.h"
#include "common/logging.h"

namespace spa::campaign {

CampaignRunner::CampaignRunner(core::Spa* spa,
                               const PopulationModel* population,
                               const CourseCatalog* courses,
                               const ResponseModel* responses,
                               RunnerConfig config)
    : spa_(spa),
      population_(population),
      courses_(courses),
      responses_(responses),
      config_(config),
      rng_(config.seed, /*stream=*/101) {
  SPA_CHECK(spa != nullptr && population != nullptr &&
            courses != nullptr && responses != nullptr);
}

void CampaignRunner::RegisterCourses() {
  for (const Course& course : courses_->courses()) {
    spa_->SetItemFeatures(course.id,
                          courses_->ContentFeatures(course));
    spa_->SetItemEmotionProfile(course.id, course.emotion_profile);
  }
}

void CampaignRunner::BootstrapUsers(
    const std::vector<sum::UserId>& users) {
  const auto& actions = spa_->action_catalog();
  const auto& pageviews =
      actions.CodesFor(lifelog::ActionType::kPageView);
  const auto& searches = actions.CodesFor(lifelog::ActionType::kSearch);
  const auto& clicks = actions.CodesFor(lifelog::ActionType::kClick);

  for (sum::UserId id : users) {
    const LatentUser latent = population_->UserAt(id);
    // Assemble the observable profile in a scratch model, then publish
    // it through the service as one atomic versioned update.
    sum::SmartUserModel scratch(id, &spa_->attribute_catalog());
    population_->InitializeSum(latent, &scratch);
    SPA_CHECK(spa_->sum_service()
                  ->Apply(sum::SumUpdate::FromModel(scratch))
                  .ok());

    // Browsing history: activity volume correlates with the latent
    // base propensity (active users buy more), giving the objective
    // baseline its legitimate signal.
    Rng rng(config_.seed ^ 0x5eed5eed5eed5eedULL,
            static_cast<uint64_t>(id) + 1);
    const size_t base = config_.bootstrap_events_per_user;
    const size_t events =
        1 + static_cast<size_t>(
                static_cast<double>(base) *
                (0.4 + 3.0 * latent.base_propensity +
                 rng.Uniform(0.0, 0.1)));
    spa::TimeMicros t =
        spa_->clock()->now() -
        static_cast<spa::TimeMicros>(rng.Uniform(5.0, 40.0) *
                                     static_cast<double>(
                                         spa::kMicrosPerDay));
    for (size_t e = 0; e < events; ++e) {
      lifelog::Event event;
      event.user = id;
      event.time = t;
      const double kind = rng.Uniform();
      if (kind < 0.6) {
        event.action_code = pageviews[static_cast<size_t>(
            rng.UniformInt(0, static_cast<int64_t>(pageviews.size()) -
                                  1))];
      } else if (kind < 0.8) {
        event.action_code = searches[static_cast<size_t>(rng.UniformInt(
            0, static_cast<int64_t>(searches.size()) - 1))];
      } else {
        event.action_code = clicks[static_cast<size_t>(rng.UniformInt(
            0, static_cast<int64_t>(clicks.size()) - 1))];
      }
      // Visits gravitate to courses in the user's favourite topics.
      if (!courses_->courses().empty() && rng.Bernoulli(0.7)) {
        // Try a few random courses, keep the best topic match.
        const Course* best = nullptr;
        double best_match = -1.0;
        for (int trial = 0; trial < 3; ++trial) {
          const Course& candidate = courses_->course(
              static_cast<size_t>(rng.UniformInt(
                  0,
                  static_cast<int64_t>(courses_->size()) - 1)));
          const double match =
              latent.topics[static_cast<size_t>(candidate.topic)];
          if (match > best_match) {
            best_match = match;
            best = &candidate;
          }
        }
        event.item = best->id;
      }
      spa_->RecordEvent(event);
      t += static_cast<spa::TimeMicros>(
          rng.Exponential(1.0) *
          static_cast<double>(spa::kMicrosPerDay));
    }

    // Gradual EIT warm-up: the platform had been asking one question
    // per historical newsletter long before the evaluated campaigns
    // (§5.2); simulate those earlier contacts.
    for (size_t c = 0; c < config_.eit_warmup_contacts; ++c) {
      MaybeDeliverEitQuestion(latent, &rng);
    }
  }
}

const Course& CampaignRunner::PickCourse(
    const CampaignSpec& spec, const sum::SmartUserModel& model) const {
  SPA_CHECK(!spec.featured_courses.empty());
  const sum::AttributeCatalog& catalog = model.catalog();
  const Course* best = nullptr;
  double best_match = -1.0;
  for (ItemId id : spec.featured_courses) {
    const auto course = courses_->ById(id);
    if (!course.ok()) continue;
    // Observable proxy: the user's *stated* interest in the topic.
    static constexpr const char* kTopicAttr[kNumTopics] = {
        "topic_business",  "topic_it",        "topic_health",
        "topic_languages", "topic_arts",      "topic_law",
        "topic_science",   "topic_education", "topic_marketing",
        "topic_finance",   "topic_tourism",   "topic_sports",
        "topic_design",    "topic_engineering",
        "topic_psychology"};
    const auto attr = catalog.IdOf(
        kTopicAttr[static_cast<size_t>(course.value()->topic)]);
    const double match =
        attr.ok() ? model.value(attr.value()) : 0.0;
    if (match > best_match) {
      best_match = match;
      best = course.value();
    }
  }
  SPA_CHECK(best != nullptr);
  return *best;
}

bool CampaignRunner::MaybeDeliverEitQuestion(const LatentUser& latent,
                                             Rng* rng) {
  if (!config_.deliver_eit_question) return false;
  if (!rng->Bernoulli(latent.eit_answer_prob)) return false;  // ignored
  const auto question_id = spa_->NextEitQuestion(latent.id);
  if (!question_id.ok()) return false;  // bank exhausted
  const auto question =
      spa_->gradual_eit().bank().ById(question_id.value());
  if (!question.ok()) return false;

  // Answer simulation: the more sensitive the user truly is to the
  // item's primary attribute, the more likely they endorse the modal
  // (population-consensus) option — which in turn activates the
  // impacted attributes more strongly.
  const eit::EitQuestion& q = *question.value();
  const double primary_sens =
      q.impacts.empty()
          ? 0.0
          : latent.emotional[static_cast<size_t>(
                q.impacts.front().attribute)];
  size_t option;
  if (rng->Bernoulli(0.1 + 0.85 * primary_sens)) {
    option = q.ModalOption();
  } else {
    option = static_cast<size_t>(
        rng->UniformInt(0, eit::kOptionsPerQuestion - 1));
  }
  return spa_->RecordEitAnswer(latent.id, question_id.value(), option)
      .ok();
}

CampaignOutcome CampaignRunner::RunCampaign(
    const CampaignSpec& spec,
    const std::vector<sum::UserId>& candidates) {
  CampaignOutcome outcome;
  outcome.campaign_id = spec.id;
  outcome.channel = spec.channel;
  campaign_starts_.push_back(history_labels_.size());

  // ---- target selection ---------------------------------------------------
  std::vector<sum::UserId> targets;
  const size_t count = std::min(spec.target_count, candidates.size());
  if (spec.targeting == TargetingMode::kPropensity) {
    const auto ranked = spa_->SelectTopProspects(candidates, count);
    if (ranked.ok()) {
      for (const auto& [user, score] : ranked.value()) {
        targets.push_back(user);
      }
    }
  }
  if (targets.empty()) {
    // Random targeting (the paper's evaluation design); scores are
    // snapshotted per contact below so the redemption curve can be
    // computed.
    std::vector<size_t> picks =
        rng_.SampleWithoutReplacement(candidates.size(), count);
    targets.reserve(count);
    for (size_t p : picks) targets.push_back(candidates[p]);
  }

  const auto& actions = spa_->action_catalog();
  const auto& open_codes =
      actions.CodesFor(lifelog::ActionType::kEmailOpen);
  const auto& click_codes =
      actions.CodesFor(lifelog::ActionType::kEmailClick);
  const auto& info_codes =
      actions.CodesFor(lifelog::ActionType::kInfoRequest);
  const auto& enroll_codes =
      actions.CodesFor(lifelog::ActionType::kEnrollment);

  // ---- delivery loop (Fig. 4) ----------------------------------------------
  for (size_t i = 0; i < targets.size(); ++i) {
    const sum::UserId user = targets[i];
    const LatentUser latent = population_->UserAt(user);
    Rng contact_rng(config_.seed ^ (0x1111 * (spec.id + 1)),
                    static_cast<uint64_t>(user) + 1);

    // Pre-contact snapshot: the features the model is allowed to see
    // when predicting this contact's outcome. Captured before the EIT
    // question and before any response events are recorded.
    ml::SparseVector snapshot = spa_->SnapshotFeatures(user);
    const auto model_score = spa_->ScoreSnapshot(snapshot);
    const double score = model_score.value_or(0.5);

    // Pin the user's current model for course selection (targets were
    // bootstrapped, but tolerate strays by touching them into being).
    sum::SumSnapshotPtr sums = spa_->sum_snapshot();
    if (!sums->Contains(user)) {
      SPA_CHECK(spa_->sum_service()->Apply(sum::SumUpdate(user)).ok());
      sums = spa_->sum_snapshot();
    }
    const Course& course = PickCourse(spec, *sums->Get(user).value());

    // Compose the (possibly personalized) message.
    sum::AttributeId argued = -1;
    if (config_.personalized_messaging) {
      const agents::ComposedMessage message =
          spa_->MessageFor(user, course.id, course.sellable_attributes);
      argued = message.argued_attribute;
      ++outcome.message_cases[static_cast<size_t>(
          message.message_case)];
    } else {
      ++outcome.message_cases[0];  // standard for everyone
    }

    // EIT question embedded in the contact (initialization stage).
    if (MaybeDeliverEitQuestion(latent, &contact_rng)) {
      ++outcome.eit_questions_answered;
    }

    // Ground-truth funnel.
    const ContactOutcome contact = responses_->Sample(
        &contact_rng, latent, course, argued,
        spa_->attribute_catalog(), spec.channel);

    // Record observable events.
    const spa::TimeMicros now = spa_->clock()->now();
    auto log_event = [&](const std::vector<int32_t>& codes,
                         double value) {
      lifelog::Event event;
      event.user = user;
      event.time = now;
      event.action_code = codes[static_cast<size_t>(user) % codes.size()];
      event.item = course.id;
      event.value = value;
      spa_->RecordEvent(event);
    };
    if (contact.opened) {
      ++outcome.opened;
      log_event(open_codes, 0.0);
    }
    if (contact.clicked) {
      ++outcome.clicked;
      log_event(click_codes, 0.0);
      log_event(info_codes, 0.0);
    }
    if (contact.transacted) {
      ++outcome.transactions;
      log_event(enroll_codes, 1.0);
    }

    // Update stage: reward the argued attribute on engagement, punish
    // when the user saw the argument and ignored it.
    if (argued >= 0 && contact.opened) {
      if (contact.UsefulImpact()) {
        spa_->ObserveInteraction(user, course.id, argued, true,
                                 contact.transacted ? 1.0 : 0.6);
      } else {
        spa_->ObserveInteraction(user, course.id, argued, false, 0.3);
      }
    }

    const bool label = contact.UsefulImpact();
    if (label) ++outcome.useful_impacts;
    outcome.labels.push_back(label ? 1 : -1);
    outcome.scores.push_back(score);
    history_features_.push_back(std::move(snapshot));
    history_labels_.push_back(label ? 1 : -1);
  }
  outcome.targeted = targets.size();

  // A campaign takes days of wall-clock; tick the platform forward.
  spa_->Tick(3 * spa::kMicrosPerDay);

  if (config_.retrain_after_campaign) {
    const spa::Status status = RetrainFromHistory();
    if (!status.ok()) {
      SPA_LOG(Debug) << "retrain skipped: " << status;
    }
  }
  return outcome;
}

spa::Status CampaignRunner::RetrainFromHistory() {
  size_t begin = 0;
  if (config_.training_window_campaigns > 0 &&
      campaign_starts_.size() > config_.training_window_campaigns) {
    begin = campaign_starts_[campaign_starts_.size() -
                             config_.training_window_campaigns];
  }
  if (begin == 0) {
    return spa_->TrainPropensityOnSnapshots(history_features_,
                                            history_labels_);
  }
  const std::vector<ml::SparseVector> window_features(
      history_features_.begin() + static_cast<long>(begin),
      history_features_.end());
  const std::vector<ml::Label> window_labels(
      history_labels_.begin() + static_cast<long>(begin),
      history_labels_.end());
  return spa_->TrainPropensityOnSnapshots(window_features,
                                          window_labels);
}

std::vector<CampaignSpec> CampaignRunner::DefaultSchedule(
    size_t targets, size_t courses_per_campaign,
    TargetingMode targeting) const {
  std::vector<CampaignSpec> schedule;
  Rng rng(config_.seed, /*stream=*/404);
  for (int c = 0; c < 10; ++c) {
    CampaignSpec spec;
    spec.id = c + 1;
    // 8 Push + 2 newsletters (§5.4).
    spec.channel = (c == 4 || c == 9) ? Channel::kNewsletter
                                      : Channel::kPush;
    spec.target_count = targets;
    spec.targeting = targeting;
    const size_t n_courses =
        std::min(courses_per_campaign, courses_->size());
    const auto picks =
        rng.SampleWithoutReplacement(courses_->size(), n_courses);
    for (size_t p : picks) {
      spec.featured_courses.push_back(courses_->course(p).id);
    }
    schedule.push_back(std::move(spec));
  }
  return schedule;
}

}  // namespace spa::campaign
