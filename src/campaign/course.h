#ifndef SPA_CAMPAIGN_COURSE_H_
#define SPA_CAMPAIGN_COURSE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "ml/sparse.h"
#include "recsys/emotion_aware.h"
#include "sum/catalog.h"

/// \file
/// Synthetic training-course catalog standing in for emagister.com's
/// course inventory. Each course carries content features (topic,
/// price, modality), an emotional-resonance profile for the advice
/// stage, and the priority-ordered *sellable attributes* the Messaging
/// Agent argues with (§5.3 step 1).

namespace spa::campaign {

using ItemId = lifelog::ItemId;

inline constexpr size_t kNumTopics = 15;  ///< matches the topic_* attributes

/// \brief One training course.
struct Course {
  ItemId id = -1;
  std::string name;
  int32_t topic = 0;             ///< [0, kNumTopics)
  double price_level = 0.5;      ///< 0 cheap .. 1 premium
  double duration_norm = 0.5;    ///< 0 short .. 1 year-long
  bool online = false;
  bool certified = false;
  /// Resonance of the course's presentation with each emotional
  /// attribute (drives the emotion-aware re-ranker).
  recsys::EmotionProfile emotion_profile{};
  /// Priority-ordered attributes usable as sales arguments.
  std::vector<sum::AttributeId> sellable_attributes;
};

/// \brief Deterministic generated catalog.
class CourseCatalog {
 public:
  /// Generates `n` courses; sellable attributes reference the given
  /// attribute catalog.
  static CourseCatalog Generate(size_t n,
                                const sum::AttributeCatalog& attributes,
                                uint64_t seed);

  size_t size() const { return courses_.size(); }
  const Course& course(size_t i) const { return courses_[i]; }
  spa::Result<const Course*> ById(ItemId id) const;
  const std::vector<Course>& courses() const { return courses_; }

  /// Content feature vector (topic one-hot + numeric attributes) in the
  /// catalog's private item-feature space (kNumTopics + 4 dims).
  ml::SparseVector ContentFeatures(const Course& course) const;

 private:
  std::vector<Course> courses_;
};

}  // namespace spa::campaign

#endif  // SPA_CAMPAIGN_COURSE_H_
