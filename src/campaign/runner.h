#ifndef SPA_CAMPAIGN_RUNNER_H_
#define SPA_CAMPAIGN_RUNNER_H_

#include <array>
#include <vector>

#include "campaign/behavior.h"
#include "campaign/course.h"
#include "campaign/population.h"
#include "core/spa.h"
#include "ml/metrics.h"

/// \file
/// Campaign orchestration: drives the SPA platform through the Fig. 4
/// iterative loop (discover via Gradual EIT -> advise via individualized
/// messages -> observe responses -> reward/punish update -> retrain) and
/// collects the observations Fig. 6 is computed from.

namespace spa::campaign {

/// How targets are picked from the candidate pool.
enum class TargetingMode : uint8_t {
  kRandom = 0,      ///< the paper's design: targets "chosen in random way"
  kPropensity = 1,  ///< selection function: top-k by model score
};

/// \brief Specification of one push/newsletter campaign.
struct CampaignSpec {
  int id = 0;
  Channel channel = Channel::kPush;
  size_t target_count = 1000;
  std::vector<ItemId> featured_courses;
  TargetingMode targeting = TargetingMode::kRandom;
};

/// \brief Everything observed during one campaign.
struct CampaignOutcome {
  int campaign_id = 0;
  Channel channel = Channel::kPush;
  size_t targeted = 0;
  size_t opened = 0;
  size_t clicked = 0;
  size_t transactions = 0;
  size_t useful_impacts = 0;
  size_t eit_questions_answered = 0;
  /// Model propensity per targeted user (NaN-free; 0.5 pre-training).
  std::vector<double> scores;
  /// +1 if the contact produced a useful impact.
  std::vector<ml::Label> labels;
  /// Message-case distribution (indexed by agents::MessageCase).
  std::array<uint64_t, 4> message_cases{};

  /// Useful impacts per targeted user (the Fig. 6(b) score).
  double PredictiveScore() const {
    return targeted == 0 ? 0.0
                         : static_cast<double>(useful_impacts) /
                               static_cast<double>(targeted);
  }
};

struct RunnerConfig {
  uint64_t seed = 42;
  /// Embed one Gradual EIT question in every contact (§5.2).
  bool deliver_eit_question = true;
  /// Use the Messaging Agent's individualized arguments; false sends
  /// the standard message to everyone (messaging ablation).
  bool personalized_messaging = true;
  /// Browsing-history events seeded per user during bootstrap.
  size_t bootstrap_events_per_user = 10;
  /// Historical newsletter contacts simulated during bootstrap, each
  /// offering one EIT question (the platform ran its Gradual EIT long
  /// before the evaluated campaigns).
  size_t eit_warmup_contacts = 60;
  /// Retrain the propensity model after each campaign.
  bool retrain_after_campaign = true;
  /// Train on the snapshots of the most recent N campaigns only
  /// (0 = entire history). Feature distributions drift as the Gradual
  /// EIT keeps activating attributes, so a fresh window tracks the
  /// current epoch — this is what the paper's "incremental learning"
  /// buys over batch retraining on stale data.
  size_t training_window_campaigns = 3;
};

/// \brief Drives the platform through bootstrap + campaigns.
class CampaignRunner {
 public:
  CampaignRunner(core::Spa* spa, const PopulationModel* population,
                 const CourseCatalog* courses,
                 const ResponseModel* responses,
                 RunnerConfig config = {});

  /// Registers course content/emotion profiles with the platform.
  void RegisterCourses();

  /// Creates SUMs and seeds browsing history for the given users.
  void BootstrapUsers(const std::vector<sum::UserId>& users);

  /// Runs one campaign over targets drawn from `candidates`, recording
  /// events, EIT answers and reinforcement through the platform.
  CampaignOutcome RunCampaign(const CampaignSpec& spec,
                              const std::vector<sum::UserId>& candidates);

  /// (Re)trains the platform propensity model from every contact-time
  /// snapshot accumulated so far. Fails until both classes were
  /// observed.
  spa::Status RetrainFromHistory();

  /// Number of (snapshot, label) examples accumulated.
  size_t history_size() const { return history_labels_.size(); }

  /// Contact-time snapshots (for offline ablation studies: retrain a
  /// model on the same observations with a reduced feature set).
  const std::vector<ml::SparseVector>& history_features() const {
    return history_features_;
  }
  const std::vector<ml::Label>& history_labels() const {
    return history_labels_;
  }
  /// history index where each recorded campaign began.
  const std::vector<size_t>& campaign_starts() const {
    return campaign_starts_;
  }

  /// Builds a default 10-campaign schedule (8 Push + 2 newsletters,
  /// the paper's §5.4 design) with `targets` users per campaign.
  std::vector<CampaignSpec> DefaultSchedule(size_t targets,
                                            size_t courses_per_campaign,
                                            TargetingMode targeting) const;

 private:
  /// Picks the featured course that best matches the user's stated
  /// topic interests (cheap observable proxy used at campaign scale).
  const Course& PickCourse(const CampaignSpec& spec,
                           const sum::SmartUserModel& model) const;

  /// Simulates the user answering (or ignoring) one EIT question.
  /// Returns true when a question was answered.
  bool MaybeDeliverEitQuestion(const LatentUser& latent, Rng* rng);

  core::Spa* spa_;
  const PopulationModel* population_;
  const CourseCatalog* courses_;
  const ResponseModel* responses_;
  RunnerConfig config_;
  Rng rng_;
  /// Contact-time feature snapshots + observed labels (leak-free
  /// training data: the snapshot never contains the response events).
  std::vector<ml::SparseVector> history_features_;
  std::vector<ml::Label> history_labels_;
  /// history_ index where each recorded campaign began (for windowing).
  std::vector<size_t> campaign_starts_;
};

}  // namespace spa::campaign

#endif  // SPA_CAMPAIGN_RUNNER_H_
