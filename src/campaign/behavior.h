#ifndef SPA_CAMPAIGN_BEHAVIOR_H_
#define SPA_CAMPAIGN_BEHAVIOR_H_

#include "campaign/course.h"
#include "campaign/population.h"
#include "common/rng.h"

/// \file
/// Ground-truth response model: the open -> click -> transaction funnel
/// a contacted user walks through. Probabilities depend on the latent
/// user, the offered course, and how well the message's sales argument
/// matches the user's true sensibility — this is the mechanism by which
/// emotional personalization lifts redemption in the simulation, just
/// as the paper claims it did in production.

namespace spa::campaign {

/// Contact channel (the deployment used 8 Push + 2 newsletters).
enum class Channel : uint8_t { kPush = 0, kNewsletter = 1 };

/// What happened after one contact.
struct ContactOutcome {
  bool opened = false;
  bool clicked = false;
  bool transacted = false;

  /// The paper counts "actions such as click streams, information
  /// requirement ..., enrollments, opinions" as transactions — any
  /// post-open engagement is a useful impact.
  bool UsefulImpact() const { return clicked || transacted; }
};

struct ResponseConfig {
  double open_scale_push = 1.0;
  double open_scale_newsletter = 0.75;
  // Logit weights for P(click | open).
  double click_bias = -2.6;
  double click_topic_weight = 2.0;
  double click_argument_weight = 3.0;
  double click_propensity_weight = 4.4;
  // Logit weights for P(transaction | click).
  double trans_bias = -1.2;
  double trans_topic_weight = 1.2;
  double trans_argument_weight = 2.0;
  double trans_propensity_weight = 2.8;
};

/// \brief Samples funnel outcomes from ground truth.
class ResponseModel {
 public:
  explicit ResponseModel(ResponseConfig config = {});

  /// How well arguing `argued_attribute` lands with this user:
  /// the user's *latent* sensibility for the argued attribute
  /// (emotional or subjective), 0 for the standard message (-1).
  double ArgumentAlignment(const LatentUser& user,
                           sum::AttributeId argued_attribute,
                           const sum::AttributeCatalog& catalog) const;

  /// The user's true interest in the course's topic.
  double TopicMatch(const LatentUser& user, const Course& course) const;

  double OpenProbability(const LatentUser& user, Channel channel) const;
  double ClickProbability(const LatentUser& user, const Course& course,
                          double argument_alignment) const;
  double TransactionProbability(const LatentUser& user,
                                const Course& course,
                                double argument_alignment) const;

  /// Samples the full funnel.
  ContactOutcome Sample(Rng* rng, const LatentUser& user,
                        const Course& course,
                        sum::AttributeId argued_attribute,
                        const sum::AttributeCatalog& catalog,
                        Channel channel) const;

  const ResponseConfig& config() const { return config_; }

 private:
  ResponseConfig config_;
};

}  // namespace spa::campaign

#endif  // SPA_CAMPAIGN_BEHAVIOR_H_
