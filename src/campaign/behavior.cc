#include "campaign/behavior.h"

#include <algorithm>

#include "ml/logreg.h"

namespace spa::campaign {

ResponseModel::ResponseModel(ResponseConfig config) : config_(config) {}

double ResponseModel::ArgumentAlignment(
    const LatentUser& user, sum::AttributeId argued_attribute,
    const sum::AttributeCatalog& catalog) const {
  if (argued_attribute < 0) return 0.0;
  const sum::AttributeDef& def = catalog.def(argued_attribute);
  if (def.kind == sum::AttributeKind::kEmotional) {
    // A well-aimed emotional argument lands with the user's true
    // sensibility — this holds for negative-valence attributes too,
    // whose templates are crafted to reassure (Fig. 5(b)).
    return user.emotional[static_cast<size_t>(def.emotion)];
  }
  if (def.name == "price_sensitivity") return user.price_sensitivity;
  if (def.name == "certification_value") {
    return user.certification_value;
  }
  if (def.name == "flexibility_importance") {
    return user.flexibility_importance;
  }
  return 0.0;
}

double ResponseModel::TopicMatch(const LatentUser& user,
                                 const Course& course) const {
  return user.topics[static_cast<size_t>(course.topic)];
}

double ResponseModel::OpenProbability(const LatentUser& user,
                                      Channel channel) const {
  const double scale = channel == Channel::kPush
                           ? config_.open_scale_push
                           : config_.open_scale_newsletter;
  return std::clamp(user.open_rate * scale, 0.0, 1.0);
}

double ResponseModel::ClickProbability(const LatentUser& user,
                                       const Course& course,
                                       double argument_alignment) const {
  const double logit = config_.click_bias +
                       config_.click_topic_weight *
                           TopicMatch(user, course) +
                       config_.click_argument_weight *
                           argument_alignment +
                       config_.click_propensity_weight *
                           user.base_propensity;
  return ml::Sigmoid(logit);
}

double ResponseModel::TransactionProbability(
    const LatentUser& user, const Course& course,
    double argument_alignment) const {
  const double logit = config_.trans_bias +
                       config_.trans_topic_weight *
                           TopicMatch(user, course) +
                       config_.trans_argument_weight *
                           argument_alignment +
                       config_.trans_propensity_weight *
                           user.base_propensity;
  return ml::Sigmoid(logit);
}

ContactOutcome ResponseModel::Sample(
    Rng* rng, const LatentUser& user, const Course& course,
    sum::AttributeId argued_attribute,
    const sum::AttributeCatalog& catalog, Channel channel) const {
  ContactOutcome outcome;
  outcome.opened = rng->Bernoulli(OpenProbability(user, channel));
  if (!outcome.opened) return outcome;
  const double alignment =
      ArgumentAlignment(user, argued_attribute, catalog);
  outcome.clicked =
      rng->Bernoulli(ClickProbability(user, course, alignment));
  if (!outcome.clicked) return outcome;
  outcome.transacted =
      rng->Bernoulli(TransactionProbability(user, course, alignment));
  return outcome;
}

}  // namespace spa::campaign
