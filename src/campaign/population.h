#ifndef SPA_CAMPAIGN_POPULATION_H_
#define SPA_CAMPAIGN_POPULATION_H_

#include <array>
#include <cstdint>

#include "campaign/course.h"
#include "eit/emotion.h"
#include "sum/user_model.h"

/// \file
/// The synthetic population standing in for emagister's 3.16 M
/// registered users. Each user has *latent* ground truth — emotional
/// sensibilities, topic interests, base propensity — that the platform
/// can only observe through EIT answers, click streams and campaign
/// outcomes. Users are generated on demand from (seed, id) so that
/// paper-scale populations need no storage.

namespace spa::campaign {

/// \brief Latent (ground-truth) description of one user.
struct LatentUser {
  sum::UserId id = 0;
  /// True emotional sensibilities, indexed by EmotionalAttribute.
  std::array<double, eit::kNumEmotionalAttributes> emotional{};
  /// True interest per course topic.
  std::array<double, kNumTopics> topics{};
  /// Base willingness to transact, independent of message/course fit.
  double base_propensity = 0.1;
  /// Probability of opening a push/newsletter at all.
  double open_rate = 0.5;
  /// Probability of answering an embedded EIT question (the paper
  /// notes many users never answer — the sparsity problem).
  double eit_answer_prob = 0.3;
  /// True subjective traits (price/certification/flexibility).
  double price_sensitivity = 0.5;
  double certification_value = 0.5;
  double flexibility_importance = 0.5;
  /// Observable socio-demographics (normalized).
  double age_norm = 0.5;
  double education = 0.5;
  double income = 0.5;
  double city_size = 0.5;

  /// The user's strongest latent emotional attribute.
  eit::EmotionalAttribute DominantEmotion() const;
};

struct PopulationConfig {
  uint64_t seed = 42;
  /// Mean EIT answer probability (sparsity knob for the ablations).
  double mean_eit_answer_prob = 0.35;
  /// Scales everyone's base propensity (campaign base-rate knob).
  double base_propensity_scale = 1.0;
  /// Probability that an emotional attribute is "strong" for a user.
  double strong_emotion_prob = 0.25;
};

/// \brief Deterministic on-demand population.
class PopulationModel {
 public:
  explicit PopulationModel(PopulationConfig config = {});

  /// Ground truth for user `id` (pure function of (seed, id)).
  LatentUser UserAt(sum::UserId id) const;

  /// Initializes a SUM with the *observable* part of the user: stated
  /// demographics, stated topic interests and subjective preferences
  /// (noisy versions of the truth) — never the emotional latents.
  void InitializeSum(const LatentUser& user,
                     sum::SmartUserModel* model) const;

  const PopulationConfig& config() const { return config_; }

 private:
  PopulationConfig config_;
};

}  // namespace spa::campaign

#endif  // SPA_CAMPAIGN_POPULATION_H_
