#ifndef SPA_ML_SPARSE_H_
#define SPA_ML_SPARSE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

/// \file
/// Sparse vectors and CSR matrices. The user-attribute design matrices in
/// SPA are sparse (the paper's "sparsity problem": most users never answer
/// EIT questions and touch only a handful of the 984 actions), so all
/// learners consume this representation.

namespace spa::ml {

/// One (feature index, value) pair; construction convenience only —
/// storage is structure-of-arrays.
struct SparseEntry {
  int32_t index;
  double value;
};

/// Lightweight non-owning view over a sparse row (SoA layout).
struct SparseRowView {
  const int32_t* indices = nullptr;
  const double* values = nullptr;
  size_t nnz = 0;

  /// Dot product with a dense vector (indices beyond its size count as 0).
  double Dot(const std::vector<double>& dense) const;
  /// dense += alpha * this (dense must cover all indices).
  void AxpyInto(double alpha, std::vector<double>* dense) const;
  /// Sum of squared values.
  double L2NormSquared() const;
  /// Merge-join dot product with another sparse row.
  double Dot(const SparseRowView& other) const;
};

/// \brief Owning sorted-by-index sparse vector.
class SparseVector {
 public:
  SparseVector() = default;
  /// Entries must be sorted by index, no duplicates (checked in debug).
  explicit SparseVector(const std::vector<SparseEntry>& entries);

  /// Appends an entry with index strictly greater than any existing one.
  void PushBack(int32_t index, double value);

  size_t nnz() const { return indices_.size(); }
  bool empty() const { return indices_.empty(); }
  int32_t index(size_t i) const { return indices_[i]; }
  double value(size_t i) const { return values_[i]; }

  /// Non-owning view (valid while this vector is alive and unmodified).
  SparseRowView view() const {
    return SparseRowView{indices_.data(), values_.data(), indices_.size()};
  }

  double Dot(const std::vector<double>& dense) const {
    return view().Dot(dense);
  }
  void AxpyInto(double alpha, std::vector<double>* dense) const {
    view().AxpyInto(alpha, dense);
  }
  double L2NormSquared() const { return view().L2NormSquared(); }
  double Dot(const SparseVector& other) const {
    return view().Dot(other.view());
  }

 private:
  std::vector<int32_t> indices_;
  std::vector<double> values_;
};

/// \brief Compressed sparse row matrix built by appending rows.
class SparseMatrix {
 public:
  explicit SparseMatrix(int32_t cols = 0) : cols_(cols) {
    indptr_.push_back(0);
  }

  /// Appends a row; column count grows to cover the largest index.
  void AppendRow(const SparseVector& row) { AppendRow(row.view()); }
  void AppendRow(const SparseRowView& row);
  void AppendRow(const std::vector<SparseEntry>& entries);

  size_t rows() const { return indptr_.size() - 1; }
  int32_t cols() const { return cols_; }
  size_t nnz() const { return indices_.size(); }

  SparseRowView row(size_t r) const;

  /// Copies a row into an owning SparseVector.
  SparseVector RowCopy(size_t r) const;

  /// Reserves storage for an expected number of rows / nonzeros.
  void Reserve(size_t expected_rows, size_t expected_nnz);

  /// Sets the column count (must be >= current column count).
  void SetCols(int32_t cols);

  /// Multiplies every value in column c by factors[c] (factors size ==
  /// cols). Used by the scalers.
  void ScaleColumns(const std::vector<double>& factors);

 private:
  int32_t cols_;
  std::vector<size_t> indptr_;
  std::vector<int32_t> indices_;
  std::vector<double> values_;
};

/// Dense helpers shared by the learners.
double Dot(const std::vector<double>& a, const std::vector<double>& b);
double L2NormSquared(const std::vector<double>& a);
/// y += alpha * x.
void Axpy(double alpha, const std::vector<double>& x,
          std::vector<double>* y);
void Scale(double alpha, std::vector<double>* x);

}  // namespace spa::ml

#endif  // SPA_ML_SPARSE_H_
