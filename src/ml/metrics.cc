#include "ml/metrics.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/check.h"

namespace spa::ml {

double ConfusionMatrix::Accuracy() const {
  const size_t n = total();
  if (n == 0) return 0.0;
  return static_cast<double>(tp + tn) / static_cast<double>(n);
}

double ConfusionMatrix::Precision() const {
  if (tp + fp == 0) return 0.0;
  return static_cast<double>(tp) / static_cast<double>(tp + fp);
}

double ConfusionMatrix::Recall() const {
  if (tp + fn == 0) return 0.0;
  return static_cast<double>(tp) / static_cast<double>(tp + fn);
}

double ConfusionMatrix::F1() const {
  const double p = Precision();
  const double r = Recall();
  if (p + r == 0.0) return 0.0;
  return 2.0 * p * r / (p + r);
}

ConfusionMatrix Confusion(const std::vector<double>& scores,
                          const std::vector<Label>& labels,
                          double threshold) {
  SPA_CHECK(scores.size() == labels.size());
  ConfusionMatrix cm;
  for (size_t i = 0; i < scores.size(); ++i) {
    const bool predicted_pos = scores[i] >= threshold;
    const bool actual_pos = labels[i] > 0;
    if (predicted_pos && actual_pos) ++cm.tp;
    if (predicted_pos && !actual_pos) ++cm.fp;
    if (!predicted_pos && actual_pos) ++cm.fn;
    if (!predicted_pos && !actual_pos) ++cm.tn;
  }
  return cm;
}

double RocAuc(const std::vector<double>& scores,
              const std::vector<Label>& labels) {
  SPA_CHECK(scores.size() == labels.size());
  const size_t n = scores.size();
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return scores[a] < scores[b]; });

  // Average ranks over tied scores, then use the Mann-Whitney statistic.
  std::vector<double> rank(n, 0.0);
  size_t i = 0;
  while (i < n) {
    size_t j = i;
    while (j + 1 < n && scores[order[j + 1]] == scores[order[i]]) ++j;
    const double avg_rank =
        (static_cast<double>(i) + static_cast<double>(j)) / 2.0 + 1.0;
    for (size_t k = i; k <= j; ++k) rank[order[k]] = avg_rank;
    i = j + 1;
  }

  double pos_rank_sum = 0.0;
  size_t pos = 0;
  for (size_t k = 0; k < n; ++k) {
    if (labels[k] > 0) {
      pos_rank_sum += rank[k];
      ++pos;
    }
  }
  const size_t neg = n - pos;
  if (pos == 0 || neg == 0) return 0.5;
  const double u = pos_rank_sum -
                   static_cast<double>(pos) * (static_cast<double>(pos) + 1.0) / 2.0;
  return u / (static_cast<double>(pos) * static_cast<double>(neg));
}

double LogLoss(const std::vector<double>& probabilities,
               const std::vector<Label>& labels) {
  SPA_CHECK(probabilities.size() == labels.size());
  SPA_CHECK(!labels.empty());
  constexpr double kEps = 1e-12;
  double acc = 0.0;
  for (size_t k = 0; k < labels.size(); ++k) {
    const double p = std::clamp(probabilities[k], kEps, 1.0 - kEps);
    acc -= labels[k] > 0 ? std::log(p) : std::log(1.0 - p);
  }
  return acc / static_cast<double>(labels.size());
}

std::vector<GainsPoint> CumulativeGains(const std::vector<double>& scores,
                                        const std::vector<Label>& labels,
                                        size_t points) {
  SPA_CHECK(scores.size() == labels.size());
  SPA_CHECK(points >= 1);
  const size_t n = scores.size();
  SPA_CHECK(n > 0);

  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return scores[a] > scores[b];
  });

  size_t total_pos = 0;
  for (Label l : labels) {
    if (l > 0) ++total_pos;
  }

  std::vector<GainsPoint> curve;
  curve.reserve(points);
  size_t captured = 0;
  size_t next_row = 0;
  for (size_t p = 1; p <= points; ++p) {
    const size_t depth = (n * p) / points;
    while (next_row < depth) {
      if (labels[order[next_row]] > 0) ++captured;
      ++next_row;
    }
    GainsPoint point;
    point.fraction_targeted =
        static_cast<double>(depth) / static_cast<double>(n);
    point.fraction_captured =
        total_pos == 0 ? 0.0
                       : static_cast<double>(captured) /
                             static_cast<double>(total_pos);
    point.lift = point.fraction_targeted == 0.0
                     ? 0.0
                     : point.fraction_captured / point.fraction_targeted;
    curve.push_back(point);
  }
  return curve;
}

double CapturedAt(const std::vector<GainsPoint>& curve,
                  double fraction_targeted) {
  SPA_CHECK(!curve.empty());
  double prev_x = 0.0;
  double prev_y = 0.0;
  for (const auto& pt : curve) {
    if (pt.fraction_targeted >= fraction_targeted) {
      const double span = pt.fraction_targeted - prev_x;
      if (span <= 0.0) return pt.fraction_captured;
      const double w = (fraction_targeted - prev_x) / span;
      return prev_y + w * (pt.fraction_captured - prev_y);
    }
    prev_x = pt.fraction_targeted;
    prev_y = pt.fraction_captured;
  }
  return curve.back().fraction_captured;
}

double PredictiveScore(const std::vector<double>& scores,
                       const std::vector<Label>& labels,
                       double fraction_targeted) {
  SPA_CHECK(scores.size() == labels.size());
  SPA_CHECK(fraction_targeted > 0.0 && fraction_targeted <= 1.0);
  const size_t n = scores.size();
  const size_t depth = std::max<size_t>(
      1, static_cast<size_t>(static_cast<double>(n) * fraction_targeted));
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return scores[a] > scores[b];
  });
  size_t hits = 0;
  for (size_t i = 0; i < depth; ++i) {
    if (labels[order[i]] > 0) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(depth);
}

std::vector<CalibrationBin> CalibrationCurve(
    const std::vector<double>& probabilities,
    const std::vector<Label>& labels, size_t bins) {
  SPA_CHECK(probabilities.size() == labels.size());
  SPA_CHECK(bins >= 1);
  std::vector<CalibrationBin> out(bins);
  std::vector<double> pred_sum(bins, 0.0);
  std::vector<size_t> pos(bins, 0);
  for (size_t i = 0; i < probabilities.size(); ++i) {
    const double p = std::clamp(probabilities[i], 0.0, 1.0);
    size_t b = static_cast<size_t>(p * static_cast<double>(bins));
    if (b == bins) b = bins - 1;
    pred_sum[b] += p;
    if (labels[i] > 0) ++pos[b];
    ++out[b].count;
  }
  for (size_t b = 0; b < bins; ++b) {
    if (out[b].count > 0) {
      out[b].mean_predicted =
          pred_sum[b] / static_cast<double>(out[b].count);
      out[b].fraction_positive =
          static_cast<double>(pos[b]) / static_cast<double>(out[b].count);
    }
  }
  return out;
}

}  // namespace spa::ml
