#ifndef SPA_ML_CLASSIFIER_H_
#define SPA_ML_CLASSIFIER_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "ml/dataset.h"
#include "ml/sparse.h"

/// \file
/// Common interface for the binary classifiers the Smart Component can
/// plug in (the paper uses SVMs; logistic regression and naive Bayes are
/// baselines for the ablation benches).

namespace spa::ml {

/// \brief A trainable binary classifier with a real-valued decision
/// function (sign gives the label; magnitude orders by confidence).
class BinaryClassifier {
 public:
  virtual ~BinaryClassifier() = default;

  /// Trains on the dataset; implementations validate the input.
  virtual spa::Status Train(const Dataset& data) = 0;

  /// Real-valued score; >= 0 means predicted positive.
  virtual double Score(const SparseRowView& row) const = 0;

  /// Human-readable model name for reports.
  virtual std::string name() const = 0;

  double Score(const SparseVector& v) const { return Score(v.view()); }

  Label Predict(const SparseRowView& row) const {
    return Score(row) >= 0.0 ? Label{1} : Label{-1};
  }

  /// Scores every row of a dataset (test-time helper).
  std::vector<double> ScoreAll(const Dataset& data) const {
    std::vector<double> out;
    out.reserve(data.size());
    for (size_t i = 0; i < data.size(); ++i) out.push_back(Score(data.x.row(i)));
    return out;
  }
};

/// \brief A linear model exposing its weights (for SVM-RFE and for the
/// Attributes Manager's per-attribute relevance ranking).
class LinearClassifier : public BinaryClassifier {
 public:
  /// Weight vector, one entry per feature.
  virtual const std::vector<double>& weights() const = 0;
  /// Intercept.
  virtual double bias() const = 0;

  double Score(const SparseRowView& row) const override {
    return row.Dot(weights()) + bias();
  }
};

}  // namespace spa::ml

#endif  // SPA_ML_CLASSIFIER_H_
