#include "ml/ranking.h"

#include <algorithm>

#include "common/check.h"
#include "common/rng.h"

namespace spa::ml {

RankSvm::RankSvm(RankSvmConfig config) : config_(config) {}

spa::Status RankSvm::Train(const Dataset& data) {
  SPA_RETURN_IF_ERROR(data.Validate());
  std::vector<size_t> pos, neg;
  for (size_t i = 0; i < data.size(); ++i) {
    (data.y[i] > 0 ? pos : neg).push_back(i);
  }
  if (pos.empty() || neg.empty()) {
    return spa::Status::FailedPrecondition(
        "RankSVM needs both relevant and irrelevant examples");
  }

  // Build difference vectors x_pos - x_neg with label +1, plus the
  // mirrored pair with label -1 to keep the classes balanced.
  Rng rng(config_.seed);
  Dataset pairs;
  pairs.x.SetCols(data.features());
  const size_t per_pos =
      static_cast<size_t>(std::max(1, config_.pairs_per_positive));
  pairs.x.Reserve(pos.size() * per_pos * 2,
                  pos.size() * per_pos * 2 * 16);

  std::vector<double> dense(static_cast<size_t>(data.features()), 0.0);
  std::vector<SparseEntry> entries;
  for (size_t p : pos) {
    for (size_t k = 0; k < per_pos; ++k) {
      const size_t q = neg[static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(neg.size()) - 1))];
      // diff = x_p - x_q, materialized sparsely via a scatter buffer.
      const SparseRowView xp = data.x.row(p);
      const SparseRowView xq = data.x.row(q);
      xp.AxpyInto(1.0, &dense);
      xq.AxpyInto(-1.0, &dense);
      entries.clear();
      for (size_t i = 0; i < xp.nnz; ++i) {
        entries.push_back({xp.indices[i], 0.0});
      }
      for (size_t i = 0; i < xq.nnz; ++i) {
        entries.push_back({xq.indices[i], 0.0});
      }
      std::sort(entries.begin(), entries.end(),
                [](const SparseEntry& a, const SparseEntry& b) {
                  return a.index < b.index;
                });
      entries.erase(std::unique(entries.begin(), entries.end(),
                                [](const SparseEntry& a,
                                   const SparseEntry& b) {
                                  return a.index == b.index;
                                }),
                    entries.end());
      for (auto& e : entries) {
        e.value = dense[static_cast<size_t>(e.index)];
        dense[static_cast<size_t>(e.index)] = 0.0;
      }
      std::vector<SparseEntry> mirrored = entries;
      for (auto& e : mirrored) e.value = -e.value;
      pairs.x.AppendRow(entries);
      pairs.y.push_back(1);
      pairs.x.AppendRow(mirrored);
      pairs.y.push_back(-1);
    }
  }

  SvmConfig svm_config = config_.svm;
  svm_config.fit_bias = false;  // ranking is translation-invariant
  LinearSvm svm(svm_config);
  SPA_RETURN_IF_ERROR(svm.Train(pairs));
  weights_ = svm.weights();
  weights_.resize(static_cast<size_t>(data.features()), 0.0);
  return spa::Status::OK();
}

double RankSvm::Score(const SparseRowView& row) const {
  return row.Dot(weights_);
}

double KendallTau(const std::vector<double>& a,
                  const std::vector<double>& b) {
  SPA_CHECK(a.size() == b.size());
  const size_t n = a.size();
  if (n < 2) return 1.0;
  int64_t concordant = 0;
  int64_t discordant = 0;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      const double da = a[i] - a[j];
      const double db = b[i] - b[j];
      const double prod = da * db;
      if (prod > 0.0) ++concordant;
      if (prod < 0.0) ++discordant;
    }
  }
  const double pairs = static_cast<double>(n) *
                       (static_cast<double>(n) - 1.0) / 2.0;
  return static_cast<double>(concordant - discordant) / pairs;
}

}  // namespace spa::ml
