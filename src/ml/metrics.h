#ifndef SPA_ML_METRICS_H_
#define SPA_ML_METRICS_H_

#include <cstddef>
#include <vector>

#include "ml/dataset.h"

/// \file
/// Classification and targeting metrics. The cumulative-gains machinery
/// here regenerates the paper's Fig. 6(a) redemption curve; the predictive
/// score matches Fig. 6(b)'s definition (useful impacts / targeted users).

namespace spa::ml {

/// \brief 2x2 confusion counts at a fixed decision threshold.
struct ConfusionMatrix {
  size_t tp = 0;
  size_t fp = 0;
  size_t tn = 0;
  size_t fn = 0;

  size_t total() const { return tp + fp + tn + fn; }
  double Accuracy() const;
  double Precision() const;
  double Recall() const;
  double F1() const;
};

/// Builds the confusion matrix of `scores >= threshold` vs labels.
ConfusionMatrix Confusion(const std::vector<double>& scores,
                          const std::vector<Label>& labels,
                          double threshold = 0.0);

/// Area under the ROC curve via the rank statistic (ties averaged).
/// Returns 0.5 when one class is absent.
double RocAuc(const std::vector<double>& scores,
              const std::vector<Label>& labels);

/// Binary cross-entropy of probabilities in (0,1) against labels.
double LogLoss(const std::vector<double>& probabilities,
               const std::vector<Label>& labels);

/// One point of a cumulative-gains (redemption) curve.
struct GainsPoint {
  double fraction_targeted;  ///< x: share of population contacted
  double fraction_captured;  ///< y: share of all positives captured
  double lift;               ///< fraction_captured / fraction_targeted
};

/// \brief Cumulative-gains curve: sort by score descending, walk deciles.
///
/// `points` controls the granularity (20 = 5 % steps). The curve always
/// starts implicitly at (0, 0) and ends at (1, 1).
std::vector<GainsPoint> CumulativeGains(const std::vector<double>& scores,
                                        const std::vector<Label>& labels,
                                        size_t points = 20);

/// Fraction of all positives captured when targeting the top
/// `fraction_targeted` of the population by score (linear interpolation
/// between curve points).
double CapturedAt(const std::vector<GainsPoint>& curve,
                  double fraction_targeted);

/// The paper's "predictive score": positives among the targeted set
/// divided by the number targeted (a precision-at-depth).
double PredictiveScore(const std::vector<double>& scores,
                       const std::vector<Label>& labels,
                       double fraction_targeted);

/// \brief Reliability-diagram bin.
struct CalibrationBin {
  double mean_predicted = 0.0;
  double fraction_positive = 0.0;
  size_t count = 0;
};

/// Bins probability predictions into `bins` equal-width bins.
std::vector<CalibrationBin> CalibrationCurve(
    const std::vector<double>& probabilities,
    const std::vector<Label>& labels, size_t bins = 10);

}  // namespace spa::ml

#endif  // SPA_ML_METRICS_H_
