#include "ml/svm_smo.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"

namespace spa::ml {

double EvalKernel(const KernelConfig& kernel, const SparseRowView& a,
                  const SparseRowView& b) {
  switch (kernel.kind) {
    case KernelKind::kLinear:
      return a.Dot(b);
    case KernelKind::kRbf: {
      const double dist_sq =
          a.L2NormSquared() + b.L2NormSquared() - 2.0 * a.Dot(b);
      return std::exp(-kernel.gamma * std::max(0.0, dist_sq));
    }
    case KernelKind::kPolynomial: {
      const double base = kernel.gamma * a.Dot(b) + kernel.coef0;
      double acc = 1.0;
      for (int i = 0; i < kernel.degree; ++i) acc *= base;
      return acc;
    }
  }
  return 0.0;
}

SmoSvm::SmoSvm(SmoConfig config) : config_(config) {}

spa::Status SmoSvm::Train(const Dataset& data) {
  SPA_RETURN_IF_ERROR(data.Validate());
  const size_t n = data.size();
  if (n == 0) return spa::Status::InvalidArgument("empty training set");
  if (data.positives() == 0 || data.positives() == n) {
    return spa::Status::FailedPrecondition(
        "SMO needs both classes in the training set");
  }

  const bool cache_full =
      n <= config_.dense_cache_limit;

  // Kernel access: full cache when affordable, row-on-demand otherwise.
  std::vector<double> kcache;
  if (cache_full) {
    kcache.resize(n * n);
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = i; j < n; ++j) {
        const double k =
            EvalKernel(config_.kernel, data.x.row(i), data.x.row(j));
        kcache[i * n + j] = k;
        kcache[j * n + i] = k;
      }
    }
  }
  auto kij = [&](size_t i, size_t j) {
    if (cache_full) return kcache[i * n + j];
    return EvalKernel(config_.kernel, data.x.row(i), data.x.row(j));
  };

  std::vector<double> alpha(n, 0.0);
  // Gradient of the dual objective: g_i = y_i * f(x_i) - 1 where f uses
  // the current alphas (initially all zero -> g_i = -1).
  std::vector<double> grad(n, -1.0);

  const double c = config_.c;
  const double tol = config_.tolerance;
  iterations_run_ = 0;

  for (int pass = 0; pass < config_.max_passes; ++pass) {
    // Maximum-violating pair selection.
    double g_max = -std::numeric_limits<double>::infinity();
    double g_min = std::numeric_limits<double>::infinity();
    size_t i_up = n, i_low = n;
    for (size_t t = 0; t < n; ++t) {
      const double y = static_cast<double>(data.y[t]);
      // I_up: y=+1 & alpha<C, or y=-1 & alpha>0.
      if ((y > 0.0 && alpha[t] < c) || (y < 0.0 && alpha[t] > 0.0)) {
        const double v = -y * grad[t];
        if (v > g_max) {
          g_max = v;
          i_up = t;
        }
      }
      // I_low: y=+1 & alpha>0, or y=-1 & alpha<C.
      if ((y > 0.0 && alpha[t] > 0.0) || (y < 0.0 && alpha[t] < c)) {
        const double v = -y * grad[t];
        if (v < g_min) {
          g_min = v;
          i_low = t;
        }
      }
    }
    if (i_up == n || i_low == n || g_max - g_min < tol) break;
    ++iterations_run_;

    const size_t i = i_up;
    const size_t j = i_low;
    const double yi = static_cast<double>(data.y[i]);
    const double yj = static_cast<double>(data.y[j]);

    const double kii = kij(i, i);
    const double kjj = kij(j, j);
    const double kij_v = kij(i, j);
    double eta = kii + kjj - 2.0 * kij_v;
    if (eta <= 0.0) eta = 1e-12;

    // Unconstrained step along the (i, j) pair.
    const double delta = (-yi * grad[i] + yj * grad[j]) / eta;

    // Box constraints: alpha_i' = alpha_i + yi*d, alpha_j' = alpha_j - yj*d
    // with d chosen to keep both in [0, C].
    double d = delta;
    const double ai = alpha[i];
    const double aj = alpha[j];
    // yi * d must keep ai in [0, C].
    double d_max = yi > 0.0 ? (c - ai) : ai;
    double d_min = yi > 0.0 ? -ai : -(c - ai);
    // -yj * d must keep aj in [0, C]  =>  d in [...] as well.
    d_max = std::min(d_max, yj > 0.0 ? aj : (c - aj));
    d_min = std::max(d_min, yj > 0.0 ? -(c - aj) : -aj);
    d = std::clamp(d, d_min, d_max);
    if (d == 0.0) continue;

    alpha[i] = ai + yi * d;
    alpha[j] = aj - yj * d;

    // Gradient maintenance: g_t += y_t * (K_ti * yi * dai + K_tj * yj * daj)
    const double dai = alpha[i] - ai;  // = yi * d
    const double daj = alpha[j] - aj;  // = -yj * d
    for (size_t t = 0; t < n; ++t) {
      const double yt = static_cast<double>(data.y[t]);
      grad[t] += yt * (kij(t, i) * yi * dai + kij(t, j) * yj * daj);
    }
  }

  // Bias from the KKT midpoint of the final violating pair set.
  double g_max = -std::numeric_limits<double>::infinity();
  double g_min = std::numeric_limits<double>::infinity();
  for (size_t t = 0; t < n; ++t) {
    const double y = static_cast<double>(data.y[t]);
    if ((y > 0.0 && alpha[t] < c) || (y < 0.0 && alpha[t] > 0.0)) {
      g_max = std::max(g_max, -y * grad[t]);
    }
    if ((y > 0.0 && alpha[t] > 0.0) || (y < 0.0 && alpha[t] < c)) {
      g_min = std::min(g_min, -y * grad[t]);
    }
  }
  bias_ = (g_max + g_min) / 2.0;

  support_vectors_.clear();
  sv_coeffs_.clear();
  for (size_t t = 0; t < n; ++t) {
    if (alpha[t] > 1e-12) {
      support_vectors_.push_back(data.x.RowCopy(t));
      sv_coeffs_.push_back(alpha[t] * static_cast<double>(data.y[t]));
    }
  }
  return spa::Status::OK();
}

double SmoSvm::Score(const SparseRowView& row) const {
  double acc = bias_;
  for (size_t s = 0; s < support_vectors_.size(); ++s) {
    acc += sv_coeffs_[s] *
           EvalKernel(config_.kernel, support_vectors_[s].view(), row);
  }
  return acc;
}

}  // namespace spa::ml
