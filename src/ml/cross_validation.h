#ifndef SPA_ML_CROSS_VALIDATION_H_
#define SPA_ML_CROSS_VALIDATION_H_

#include <functional>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "ml/classifier.h"
#include "ml/dataset.h"
#include "ml/svm_linear.h"

/// \file
/// K-fold cross-validation and the C grid search the Smart Component
/// runs when (re)fitting its propensity SVM.

namespace spa::ml {

/// Builds a classifier instance for evaluation (fresh per fold).
using ClassifierFactory =
    std::function<std::unique_ptr<BinaryClassifier>()>;

struct CvResult {
  double mean_auc = 0.0;
  double stddev_auc = 0.0;
  std::vector<double> fold_aucs;
};

/// Runs stratified k-fold CV and reports test-fold ROC-AUC.
Result<CvResult> CrossValidateAuc(const Dataset& data,
                                  const ClassifierFactory& factory,
                                  size_t folds, uint64_t seed);

struct GridSearchResult {
  double best_c = 1.0;
  double best_auc = 0.0;
  std::vector<std::pair<double, double>> tried;  // (C, mean AUC)
};

/// Sweeps C over `candidates` with k-fold CV; returns the best value.
Result<GridSearchResult> GridSearchSvmC(const Dataset& data,
                                        const std::vector<double>& candidates,
                                        SvmConfig base_config, size_t folds,
                                        uint64_t seed);

}  // namespace spa::ml

#endif  // SPA_ML_CROSS_VALIDATION_H_
