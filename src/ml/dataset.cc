#include "ml/dataset.h"

#include <algorithm>

#include "common/check.h"
#include "common/string_util.h"

namespace spa::ml {

size_t Dataset::positives() const {
  size_t p = 0;
  for (Label l : y) {
    if (l > 0) ++p;
  }
  return p;
}

spa::Status Dataset::Validate() const {
  if (x.rows() != y.size()) {
    return spa::Status::InvalidArgument(
        StrFormat("row count %zu != label count %zu", x.rows(), y.size()));
  }
  for (size_t i = 0; i < y.size(); ++i) {
    if (y[i] != 1 && y[i] != -1) {
      return spa::Status::InvalidArgument(
          StrFormat("label at row %zu is %d, expected +1/-1", i,
                    static_cast<int>(y[i])));
    }
  }
  if (!feature_names.empty() &&
      feature_names.size() != static_cast<size_t>(x.cols())) {
    return spa::Status::InvalidArgument(
        StrFormat("feature_names size %zu != cols %d", feature_names.size(),
                  x.cols()));
  }
  return spa::Status::OK();
}

Dataset Dataset::Subset(const std::vector<size_t>& rows) const {
  Dataset out;
  out.x.SetCols(x.cols());
  out.x.Reserve(rows.size(), rows.size() * 8);
  out.y.reserve(rows.size());
  out.feature_names = feature_names;
  for (size_t r : rows) {
    SPA_CHECK(r < size());
    const SparseRowView v = x.row(r);
    std::vector<SparseEntry> entries;
    entries.reserve(v.nnz);
    for (size_t i = 0; i < v.nnz; ++i) {
      entries.push_back({v.indices[i], v.values[i]});
    }
    out.x.AppendRow(entries);
    out.y.push_back(y[r]);
  }
  return out;
}

TrainTestSplit MakeTrainTestSplit(size_t n, double test_fraction, Rng* rng) {
  SPA_CHECK(test_fraction > 0.0 && test_fraction < 1.0);
  std::vector<size_t> idx(n);
  for (size_t i = 0; i < n; ++i) idx[i] = i;
  rng->Shuffle(&idx);
  const size_t test_n = static_cast<size_t>(
      static_cast<double>(n) * test_fraction);
  TrainTestSplit split;
  split.test.assign(idx.begin(), idx.begin() + static_cast<long>(test_n));
  split.train.assign(idx.begin() + static_cast<long>(test_n), idx.end());
  return split;
}

TrainTestSplit MakeStratifiedSplit(const std::vector<Label>& y,
                                   double test_fraction, Rng* rng) {
  SPA_CHECK(test_fraction > 0.0 && test_fraction < 1.0);
  std::vector<size_t> pos, neg;
  for (size_t i = 0; i < y.size(); ++i) {
    (y[i] > 0 ? pos : neg).push_back(i);
  }
  rng->Shuffle(&pos);
  rng->Shuffle(&neg);
  TrainTestSplit split;
  auto take = [&](std::vector<size_t>& src) {
    const size_t test_n = static_cast<size_t>(
        static_cast<double>(src.size()) * test_fraction);
    for (size_t i = 0; i < src.size(); ++i) {
      (i < test_n ? split.test : split.train).push_back(src[i]);
    }
  };
  take(pos);
  take(neg);
  rng->Shuffle(&split.train);
  rng->Shuffle(&split.test);
  return split;
}

std::vector<std::vector<size_t>> KFoldIndices(size_t n, size_t folds,
                                              Rng* rng) {
  SPA_CHECK(folds >= 2);
  SPA_CHECK(n >= folds);
  std::vector<size_t> idx(n);
  for (size_t i = 0; i < n; ++i) idx[i] = i;
  rng->Shuffle(&idx);
  std::vector<std::vector<size_t>> out(folds);
  for (size_t i = 0; i < n; ++i) out[i % folds].push_back(idx[i]);
  return out;
}

std::vector<std::vector<size_t>> StratifiedKFoldIndices(
    const std::vector<Label>& y, size_t folds, Rng* rng) {
  SPA_CHECK(folds >= 2);
  std::vector<size_t> pos, neg;
  for (size_t i = 0; i < y.size(); ++i) {
    (y[i] > 0 ? pos : neg).push_back(i);
  }
  rng->Shuffle(&pos);
  rng->Shuffle(&neg);
  std::vector<std::vector<size_t>> out(folds);
  for (size_t i = 0; i < pos.size(); ++i) out[i % folds].push_back(pos[i]);
  for (size_t i = 0; i < neg.size(); ++i) out[i % folds].push_back(neg[i]);
  for (auto& fold : out) rng->Shuffle(&fold);
  return out;
}

}  // namespace spa::ml
