#ifndef SPA_ML_SVM_LINEAR_H_
#define SPA_ML_SVM_LINEAR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "ml/classifier.h"

/// \file
/// Linear support vector machines — the workhorse learner of the paper's
/// Smart Component ("SVMs are used to classify and to predict users'
/// behaviors ... and as a learning component in ranking users").
///
/// Two trainers are provided:
///  * `LinearSvm` — dual coordinate descent (Hsieh et al., ICML 2008;
///    the liblinear algorithm), exact and fast for the mid-sized design
///    matrices the Smart Component assembles per campaign.
///  * `PegasosSvm` — primal stochastic sub-gradient (Shalev-Shwartz et
///    al., 2007), used where incremental refresh matters.

namespace spa::ml {

/// Hinge-loss flavour for the dual coordinate descent trainer.
enum class SvmLoss {
  kHinge,         ///< L1-loss SVM (standard hinge)
  kSquaredHinge,  ///< L2-loss SVM
};

/// \brief Configuration for both SVM trainers.
struct SvmConfig {
  double c = 1.0;             ///< inverse regularization strength
  SvmLoss loss = SvmLoss::kHinge;
  int max_iterations = 200;   ///< outer passes over the data (DCD) / epochs
  double tolerance = 1e-4;    ///< stop when max projected gradient < tol
  bool fit_bias = true;       ///< learn an intercept (augmented feature)
  double bias_scale = 1.0;    ///< value of the augmented bias feature
  uint64_t seed = 42;         ///< permutation / sampling seed
  /// Weight applied to positive examples' C (class imbalance control;
  /// 1.0 = balanced treatment).
  double positive_class_weight = 1.0;
};

/// \brief L2-regularized hinge-loss SVM trained by dual coordinate descent.
class LinearSvm : public LinearClassifier {
 public:
  explicit LinearSvm(SvmConfig config = {});

  spa::Status Train(const Dataset& data) override;
  std::string name() const override { return "LinearSVM(DCD)"; }

  const std::vector<double>& weights() const override { return weights_; }
  double bias() const override { return bias_; }

  /// Number of outer iterations the last Train() used.
  int iterations_run() const { return iterations_run_; }
  /// Dual variables (support-vector structure; alpha > 0).
  const std::vector<double>& alphas() const { return alphas_; }

 private:
  SvmConfig config_;
  std::vector<double> weights_;
  double bias_ = 0.0;
  std::vector<double> alphas_;
  int iterations_run_ = 0;
};

/// \brief Pegasos primal SGD SVM; supports warm-started incremental
/// refresh via `PartialTrain`.
class PegasosSvm : public LinearClassifier {
 public:
  explicit PegasosSvm(SvmConfig config = {});

  spa::Status Train(const Dataset& data) override;

  /// One additional pass over `data` continuing from the current weights
  /// (incremental learning; the step-size schedule continues).
  spa::Status PartialTrain(const Dataset& data);

  std::string name() const override { return "LinearSVM(Pegasos)"; }

  /// Averaged weights (ASGD): the mean iterate, which converges far more
  /// stably than the last iterate.
  const std::vector<double>& weights() const override {
    return avg_weights_;
  }
  double bias() const override { return avg_bias_; }

 private:
  spa::Status RunEpochs(const Dataset& data, int epochs);

  SvmConfig config_;
  std::vector<double> weights_;      // current iterate
  std::vector<double> weight_sum_;   // sum of iterates (for averaging)
  std::vector<double> avg_weights_;  // materialized average
  double bias_ = 0.0;
  double bias_sum_ = 0.0;
  double avg_bias_ = 0.0;
  int64_t step_ = 0;  // global step count for the 1/(lambda t) schedule
  double lambda_ = 1e-4;
  bool initialized_ = false;
};

}  // namespace spa::ml

#endif  // SPA_ML_SVM_LINEAR_H_
