#ifndef SPA_ML_RANKING_H_
#define SPA_ML_RANKING_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "ml/dataset.h"
#include "ml/svm_linear.h"

/// \file
/// RankSVM (Joachims, 2002) via the pairwise transformation: learn a
/// linear scorer such that positive examples outrank negatives. The
/// paper: "SVMs have been used as a learning component in ranking users
/// to assess their propensity to accept a recommended item" — this is
/// the selection function's learner.

namespace spa::ml {

struct RankSvmConfig {
  SvmConfig svm;
  /// Number of (positive, negative) difference pairs sampled per
  /// positive example (bounds the pairwise blow-up).
  int pairs_per_positive = 8;
  uint64_t seed = 42;
};

/// \brief Pairwise linear ranking model.
class RankSvm {
 public:
  explicit RankSvm(RankSvmConfig config = {});

  /// Trains from binary relevance labels (+1 relevant, -1 not).
  spa::Status Train(const Dataset& data);

  /// Ranking score (higher = more relevant). No bias: only order matters.
  double Score(const SparseRowView& row) const;
  double Score(const SparseVector& v) const { return Score(v.view()); }

  const std::vector<double>& weights() const { return weights_; }

 private:
  RankSvmConfig config_;
  std::vector<double> weights_;
};

/// Kendall tau-a rank correlation between two score vectors (O(n^2);
/// evaluation helper for tests/benches).
double KendallTau(const std::vector<double>& a,
                  const std::vector<double>& b);

}  // namespace spa::ml

#endif  // SPA_ML_RANKING_H_
