#include "ml/scaler.h"

#include <algorithm>
#include <cmath>

#include "common/string_util.h"

namespace spa::ml {

spa::Status ColumnScaler::Fit(const SparseMatrix& x) {
  const size_t dims = static_cast<size_t>(x.cols());
  std::vector<double> accum(dims, 0.0);
  std::vector<size_t> counts(dims, 0);

  for (size_t r = 0; r < x.rows(); ++r) {
    const SparseRowView row = x.row(r);
    for (size_t k = 0; k < row.nnz; ++k) {
      const size_t f = static_cast<size_t>(row.indices[k]);
      const double v = row.values[k];
      if (kind_ == ScalingKind::kMaxAbs) {
        accum[f] = std::max(accum[f], std::abs(v));
      } else {
        accum[f] += v * v;
        ++counts[f];
      }
    }
  }

  factors_.assign(dims, 1.0);
  for (size_t f = 0; f < dims; ++f) {
    double denom = 0.0;
    if (kind_ == ScalingKind::kMaxAbs) {
      denom = accum[f];
    } else if (x.rows() > 0) {
      // Uncentered stddev over ALL rows (zeros included) keeps sparsity
      // semantics: E[v^2] with implicit zeros.
      denom = std::sqrt(accum[f] / static_cast<double>(x.rows()));
    }
    if (denom > 0.0) factors_[f] = 1.0 / denom;
  }
  fitted_ = true;
  return spa::Status::OK();
}

spa::Status ColumnScaler::Transform(SparseMatrix* x) const {
  if (!fitted_) {
    return spa::Status::FailedPrecondition("scaler not fitted");
  }
  if (static_cast<size_t>(x->cols()) != factors_.size()) {
    return spa::Status::InvalidArgument(
        StrFormat("column mismatch: fitted %zu, got %d", factors_.size(),
                  x->cols()));
  }
  x->ScaleColumns(factors_);
  return spa::Status::OK();
}

SparseVector ColumnScaler::TransformRow(const SparseRowView& row) const {
  SparseVector out;
  for (size_t k = 0; k < row.nnz; ++k) {
    const size_t f = static_cast<size_t>(row.indices[k]);
    const double factor = f < factors_.size() ? factors_[f] : 1.0;
    out.PushBack(row.indices[k], row.values[k] * factor);
  }
  return out;
}

}  // namespace spa::ml
