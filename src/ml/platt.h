#ifndef SPA_ML_PLATT_H_
#define SPA_ML_PLATT_H_

#include <vector>

#include "common/status.h"
#include "ml/dataset.h"

/// \file
/// Platt scaling: maps raw SVM decision values to calibrated
/// probabilities P(y=+1|f) = 1 / (1 + exp(A f + B)). The Smart Component
/// uses the calibrated probabilities as the user "propensity" scores that
/// drive campaign targeting (Fig. 6).

namespace spa::ml {

/// \brief Sigmoid calibrator fitted by the Lin-Lin-Weng (2007) Newton
/// method with backtracking — the numerically robust version of Platt's
/// original pseudo-code.
class PlattScaler {
 public:
  /// Fits A and B from decision values and labels.
  spa::Status Fit(const std::vector<double>& decision_values,
                  const std::vector<Label>& labels);

  /// Calibrated probability for a raw decision value.
  double Transform(double decision_value) const;

  std::vector<double> TransformAll(
      const std::vector<double>& decision_values) const;

  double a() const { return a_; }
  double b() const { return b_; }
  bool fitted() const { return fitted_; }

 private:
  double a_ = -1.0;
  double b_ = 0.0;
  bool fitted_ = false;
};

}  // namespace spa::ml

#endif  // SPA_ML_PLATT_H_
