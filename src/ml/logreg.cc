#include "ml/logreg.h"

#include <cmath>

#include "common/rng.h"

namespace spa::ml {

double Sigmoid(double z) {
  if (z >= 0.0) {
    const double e = std::exp(-z);
    return 1.0 / (1.0 + e);
  }
  const double e = std::exp(z);
  return e / (1.0 + e);
}

LogisticRegression::LogisticRegression(LogRegConfig config)
    : config_(config) {}

spa::Status LogisticRegression::Train(const Dataset& data) {
  SPA_RETURN_IF_ERROR(data.Validate());
  if (data.size() == 0) {
    return spa::Status::InvalidArgument("empty training set");
  }
  const size_t n = data.size();
  const size_t dims = static_cast<size_t>(data.features());
  weights_.assign(dims, 0.0);
  bias_ = 0.0;

  Rng rng(config_.seed);
  std::vector<size_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = i;

  int64_t t = 0;
  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    rng.Shuffle(&order);
    for (size_t k = 0; k < n; ++k) {
      ++t;
      const size_t i = order[k];
      const SparseRowView xi = data.x.row(i);
      const double yi = data.y[i] > 0 ? 1.0 : 0.0;
      const double p = Sigmoid(xi.Dot(weights_) + bias_);
      const double err = p - yi;  // gradient of BCE wrt logit
      const double eta = config_.learning_rate /
                         (1.0 + config_.learning_rate * config_.l2 *
                                    static_cast<double>(t));
      // L2 shrink applied lazily via multiplicative decay.
      const double shrink = 1.0 - eta * config_.l2;
      if (shrink > 0.0) Scale(shrink, &weights_);
      xi.AxpyInto(-eta * err, &weights_);
      if (config_.fit_bias) bias_ -= eta * err;
    }
  }
  return spa::Status::OK();
}

double LogisticRegression::PredictProbability(
    const SparseRowView& row) const {
  return Sigmoid(Score(row));
}

}  // namespace spa::ml
