#ifndef SPA_ML_SCALER_H_
#define SPA_ML_SCALER_H_

#include <vector>

#include "common/status.h"
#include "ml/dataset.h"

/// \file
/// Feature scaling. Sparse-safe (no centering): per-column scale factors
/// only, preserving sparsity of the design matrix.

namespace spa::ml {

enum class ScalingKind {
  kMaxAbs,       ///< divide by max |value| per column
  kUnitStddev,   ///< divide by the column's (uncentered) standard deviation
};

/// \brief Fits per-column factors on a matrix and applies them in place.
class ColumnScaler {
 public:
  explicit ColumnScaler(ScalingKind kind = ScalingKind::kMaxAbs)
      : kind_(kind) {}

  /// Learns factors from the matrix. Columns that are all-zero get
  /// factor 1 (no-op).
  spa::Status Fit(const SparseMatrix& x);

  /// Applies the learned factors in place. Matrix must have the same
  /// column count as the fitted one.
  spa::Status Transform(SparseMatrix* x) const;

  /// Scales a single row (e.g. a query vector at serving time).
  SparseVector TransformRow(const SparseRowView& row) const;

  const std::vector<double>& factors() const { return factors_; }
  bool fitted() const { return fitted_; }

 private:
  ScalingKind kind_;
  std::vector<double> factors_;
  bool fitted_ = false;
};

}  // namespace spa::ml

#endif  // SPA_ML_SCALER_H_
