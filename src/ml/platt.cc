#include "ml/platt.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace spa::ml {

spa::Status PlattScaler::Fit(const std::vector<double>& decision_values,
                             const std::vector<Label>& labels) {
  if (decision_values.size() != labels.size()) {
    return spa::Status::InvalidArgument(
        "decision value / label size mismatch");
  }
  const size_t n = labels.size();
  if (n == 0) return spa::Status::InvalidArgument("empty calibration set");

  double prior1 = 0.0;
  for (Label l : labels) {
    if (l > 0) prior1 += 1.0;
  }
  const double prior0 = static_cast<double>(n) - prior1;
  if (prior1 == 0.0 || prior0 == 0.0) {
    return spa::Status::FailedPrecondition(
        "Platt scaling needs both classes in the calibration set");
  }

  // Target probabilities with the Platt correction for overfitting.
  const double hi_target = (prior1 + 1.0) / (prior1 + 2.0);
  const double lo_target = 1.0 / (prior0 + 2.0);
  std::vector<double> t(n);
  for (size_t i = 0; i < n; ++i) {
    t[i] = labels[i] > 0 ? hi_target : lo_target;
  }

  double a = 0.0;
  double b = std::log((prior0 + 1.0) / (prior1 + 1.0));

  auto objective = [&](double aa, double bb) {
    double obj = 0.0;
    for (size_t i = 0; i < n; ++i) {
      const double f_apb = decision_values[i] * aa + bb;
      // Stable: log(1+exp(x)) split by sign.
      if (f_apb >= 0.0) {
        obj += t[i] * f_apb + std::log1p(std::exp(-f_apb));
      } else {
        obj += (t[i] - 1.0) * f_apb + std::log1p(std::exp(f_apb));
      }
    }
    return obj;
  };

  constexpr int kMaxIter = 100;
  constexpr double kMinStep = 1e-10;
  constexpr double kSigma = 1e-12;
  double fval = objective(a, b);

  for (int it = 0; it < kMaxIter; ++it) {
    double h11 = kSigma, h22 = kSigma, h21 = 0.0;
    double g1 = 0.0, g2 = 0.0;
    for (size_t i = 0; i < n; ++i) {
      const double f_apb = decision_values[i] * a + b;
      double p, q;
      if (f_apb >= 0.0) {
        const double e = std::exp(-f_apb);
        p = e / (1.0 + e);
        q = 1.0 / (1.0 + e);
      } else {
        const double e = std::exp(f_apb);
        p = 1.0 / (1.0 + e);
        q = e / (1.0 + e);
      }
      const double d2 = p * q;
      h11 += decision_values[i] * decision_values[i] * d2;
      h22 += d2;
      h21 += decision_values[i] * d2;
      const double d1 = t[i] - p;
      g1 += decision_values[i] * d1;
      g2 += d1;
    }
    if (std::abs(g1) < 1e-5 && std::abs(g2) < 1e-5) break;

    const double det = h11 * h22 - h21 * h21;
    const double da = -(h22 * g1 - h21 * g2) / det;
    const double db = -(-h21 * g1 + h11 * g2) / det;
    const double gd = g1 * da + g2 * db;

    double step = 1.0;
    while (step >= kMinStep) {
      const double new_a = a + step * da;
      const double new_b = b + step * db;
      const double new_f = objective(new_a, new_b);
      if (new_f < fval + 1e-4 * step * gd) {
        a = new_a;
        b = new_b;
        fval = new_f;
        break;
      }
      step /= 2.0;
    }
    if (step < kMinStep) break;  // line search failed; accept current
  }

  a_ = a;
  b_ = b;
  fitted_ = true;
  return spa::Status::OK();
}

double PlattScaler::Transform(double decision_value) const {
  SPA_DCHECK(fitted_);
  const double f_apb = decision_value * a_ + b_;
  if (f_apb >= 0.0) {
    const double e = std::exp(-f_apb);
    return e / (1.0 + e);
  }
  return 1.0 / (1.0 + std::exp(f_apb));
}

std::vector<double> PlattScaler::TransformAll(
    const std::vector<double>& decision_values) const {
  std::vector<double> out;
  out.reserve(decision_values.size());
  for (double f : decision_values) out.push_back(Transform(f));
  return out;
}

}  // namespace spa::ml
