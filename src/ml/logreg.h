#ifndef SPA_ML_LOGREG_H_
#define SPA_ML_LOGREG_H_

#include <cstdint>
#include <string>
#include <vector>

#include "ml/classifier.h"

/// \file
/// L2-regularized logistic regression (SGD). Baseline comparator for the
/// paper's SVM choice; also gives calibrated probabilities directly.

namespace spa::ml {

struct LogRegConfig {
  double l2 = 1e-4;          ///< L2 regularization strength (lambda)
  double learning_rate = 0.1;  ///< initial step size eta0
  int epochs = 50;
  uint64_t seed = 42;
  bool fit_bias = true;
};

/// \brief Binary logistic regression trained by decaying-step SGD.
class LogisticRegression : public LinearClassifier {
 public:
  explicit LogisticRegression(LogRegConfig config = {});

  spa::Status Train(const Dataset& data) override;
  std::string name() const override { return "LogisticRegression"; }

  const std::vector<double>& weights() const override { return weights_; }
  double bias() const override { return bias_; }

  /// P(y = +1 | x) = sigmoid(w.x + b).
  double PredictProbability(const SparseRowView& row) const;
  double PredictProbability(const SparseVector& v) const {
    return PredictProbability(v.view());
  }

 private:
  LogRegConfig config_;
  std::vector<double> weights_;
  double bias_ = 0.0;
};

/// Numerically-stable logistic sigmoid.
double Sigmoid(double z);

}  // namespace spa::ml

#endif  // SPA_ML_LOGREG_H_
