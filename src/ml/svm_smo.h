#ifndef SPA_ML_SVM_SMO_H_
#define SPA_ML_SVM_SMO_H_

#include <cstdint>
#include <string>
#include <vector>

#include "ml/classifier.h"

/// \file
/// Kernel SVM trained by Sequential Minimal Optimization with
/// maximum-violating-pair working-set selection (Keerthi et al., 2001).
/// Used where the emotional-response surface is not linearly separable
/// (small/medium design matrices; the linear DCD trainer handles the
/// campaign-scale ones).

namespace spa::ml {

enum class KernelKind { kLinear, kRbf, kPolynomial };

struct KernelConfig {
  KernelKind kind = KernelKind::kRbf;
  double gamma = 0.5;    ///< RBF: exp(-gamma |x-z|^2); poly: (gamma x.z + c0)^d
  double coef0 = 1.0;    ///< polynomial offset
  int degree = 3;        ///< polynomial degree
};

/// Evaluates the configured kernel on two sparse rows.
double EvalKernel(const KernelConfig& kernel, const SparseRowView& a,
                  const SparseRowView& b);

struct SmoConfig {
  double c = 1.0;
  double tolerance = 1e-3;   ///< KKT violation tolerance
  int max_passes = 10'000;   ///< max working-set iterations
  KernelConfig kernel;
  /// Cache the full kernel matrix when n <= this bound (O(n^2) doubles).
  size_t dense_cache_limit = 4096;
};

/// \brief Kernel SVM (binary). Keeps its support vectors as copies so the
/// training dataset may be discarded after Train().
class SmoSvm : public BinaryClassifier {
 public:
  explicit SmoSvm(SmoConfig config = {});

  spa::Status Train(const Dataset& data) override;
  double Score(const SparseRowView& row) const override;
  std::string name() const override { return "KernelSVM(SMO)"; }

  size_t support_vector_count() const { return support_vectors_.size(); }
  double bias() const { return bias_; }
  int iterations_run() const { return iterations_run_; }

 private:
  SmoConfig config_;
  std::vector<SparseVector> support_vectors_;
  std::vector<double> sv_coeffs_;  // alpha_i * y_i
  double bias_ = 0.0;
  int iterations_run_ = 0;
};

}  // namespace spa::ml

#endif  // SPA_ML_SVM_SMO_H_
