#ifndef SPA_ML_ONLINE_H_
#define SPA_ML_ONLINE_H_

#include <string>
#include <vector>

#include "ml/dataset.h"
#include "ml/sparse.h"

/// \file
/// Online (one-example-at-a-time) learners backing the paper's
/// "incremental learning" claims: the Smart Component refreshes user
/// propensity models from the event stream without batch retraining.

namespace spa::ml {

/// \brief Interface for online linear learners.
class OnlineLearner {
 public:
  virtual ~OnlineLearner() = default;

  /// Consumes one labeled example. Feature space grows on demand.
  virtual void Update(const SparseRowView& x, Label y) = 0;
  void Update(const SparseVector& x, Label y) { Update(x.view(), y); }

  /// Current decision value for an example.
  virtual double Score(const SparseRowView& x) const = 0;
  double Score(const SparseVector& x) const { return Score(x.view()); }

  virtual std::string name() const = 0;

  /// Number of Update() calls so far.
  virtual int64_t updates() const = 0;
};

/// \brief Classic perceptron with optional averaging.
class Perceptron : public OnlineLearner {
 public:
  explicit Perceptron(bool averaged = true);

  void Update(const SparseRowView& x, Label y) override;
  double Score(const SparseRowView& x) const override;
  std::string name() const override {
    return averaged_ ? "AveragedPerceptron" : "Perceptron";
  }
  int64_t updates() const override { return updates_; }
  int64_t mistakes() const { return mistakes_; }

 private:
  void EnsureDims(const SparseRowView& x);

  bool averaged_;
  std::vector<double> w_;
  std::vector<double> w_accum_;  // sum of w over steps (averaging)
  double bias_ = 0.0;
  double bias_accum_ = 0.0;
  int64_t updates_ = 0;
  int64_t mistakes_ = 0;
};

/// \brief Passive-Aggressive I (Crammer et al., 2006).
class PassiveAggressive : public OnlineLearner {
 public:
  /// `aggressiveness` is the PA-I C parameter (step-size cap).
  explicit PassiveAggressive(double aggressiveness = 1.0);

  void Update(const SparseRowView& x, Label y) override;
  double Score(const SparseRowView& x) const override;
  std::string name() const override { return "PassiveAggressiveI"; }
  int64_t updates() const override { return updates_; }

 private:
  void EnsureDims(const SparseRowView& x);

  double c_;
  std::vector<double> w_;
  double bias_ = 0.0;
  int64_t updates_ = 0;
};

}  // namespace spa::ml

#endif  // SPA_ML_ONLINE_H_
