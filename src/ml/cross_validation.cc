#include "ml/cross_validation.h"

#include <cmath>
#include <memory>

#include "common/stats.h"
#include "ml/metrics.h"

namespace spa::ml {

Result<CvResult> CrossValidateAuc(const Dataset& data,
                                  const ClassifierFactory& factory,
                                  size_t folds, uint64_t seed) {
  SPA_RETURN_IF_ERROR(data.Validate());
  if (folds < 2) {
    return spa::Status::InvalidArgument("need at least 2 folds");
  }
  Rng rng(seed);
  const auto fold_indices = StratifiedKFoldIndices(data.y, folds, &rng);

  CvResult result;
  StreamingStats stats;
  for (size_t f = 0; f < folds; ++f) {
    std::vector<size_t> train_rows;
    for (size_t g = 0; g < folds; ++g) {
      if (g == f) continue;
      train_rows.insert(train_rows.end(), fold_indices[g].begin(),
                        fold_indices[g].end());
    }
    const Dataset train = data.Subset(train_rows);
    const Dataset test = data.Subset(fold_indices[f]);

    auto model = factory();
    SPA_RETURN_IF_ERROR(model->Train(train));
    const std::vector<double> scores = model->ScoreAll(test);
    const double auc = RocAuc(scores, test.y);
    result.fold_aucs.push_back(auc);
    stats.Add(auc);
  }
  result.mean_auc = stats.mean();
  result.stddev_auc = stats.stddev();
  return result;
}

Result<GridSearchResult> GridSearchSvmC(const Dataset& data,
                                        const std::vector<double>& candidates,
                                        SvmConfig base_config, size_t folds,
                                        uint64_t seed) {
  if (candidates.empty()) {
    return spa::Status::InvalidArgument("empty candidate grid");
  }
  GridSearchResult out;
  out.best_auc = -1.0;
  for (double c : candidates) {
    SvmConfig config = base_config;
    config.c = c;
    SPA_ASSIGN_OR_RETURN(
        CvResult cv,
        CrossValidateAuc(
            data,
            [&config]() -> std::unique_ptr<BinaryClassifier> {
              return std::make_unique<LinearSvm>(config);
            },
            folds, seed));
    out.tried.emplace_back(c, cv.mean_auc);
    if (cv.mean_auc > out.best_auc) {
      out.best_auc = cv.mean_auc;
      out.best_c = c;
    }
  }
  return out;
}

}  // namespace spa::ml
