#include "ml/naive_bayes.h"

#include <cmath>

namespace spa::ml {

BernoulliNaiveBayes::BernoulliNaiveBayes(NaiveBayesConfig config)
    : config_(config) {}

spa::Status BernoulliNaiveBayes::Train(const Dataset& data) {
  SPA_RETURN_IF_ERROR(data.Validate());
  if (data.size() == 0) {
    return spa::Status::InvalidArgument("empty training set");
  }
  const size_t dims = static_cast<size_t>(data.features());
  std::vector<double> present_pos(dims, 0.0);
  std::vector<double> present_neg(dims, 0.0);
  double n_pos = 0.0;
  double n_neg = 0.0;

  for (size_t i = 0; i < data.size(); ++i) {
    const bool pos = data.y[i] > 0;
    (pos ? n_pos : n_neg) += 1.0;
    const SparseRowView row = data.x.row(i);
    for (size_t k = 0; k < row.nnz; ++k) {
      if (row.values[k] != 0.0) {
        auto& counts = pos ? present_pos : present_neg;
        counts[static_cast<size_t>(row.indices[k])] += 1.0;
      }
    }
  }
  if (n_pos == 0.0 || n_neg == 0.0) {
    return spa::Status::FailedPrecondition(
        "naive Bayes needs both classes present");
  }

  const double alpha = config_.smoothing;
  base_ = std::log(n_pos / n_neg);
  delta_.assign(dims, 0.0);
  for (size_t f = 0; f < dims; ++f) {
    const double theta_pos =
        (present_pos[f] + alpha) / (n_pos + 2.0 * alpha);
    const double theta_neg =
        (present_neg[f] + alpha) / (n_neg + 2.0 * alpha);
    // Absent-feature term folded into the constant.
    base_ += std::log1p(-theta_pos) - std::log1p(-theta_neg);
    // Present-feature adjustment: log-odds of presence minus the folded
    // absence term.
    delta_[f] = std::log(theta_pos) - std::log(theta_neg) -
                (std::log1p(-theta_pos) - std::log1p(-theta_neg));
  }
  return spa::Status::OK();
}

double BernoulliNaiveBayes::Score(const SparseRowView& row) const {
  double score = base_;
  const int32_t limit = static_cast<int32_t>(delta_.size());
  for (size_t k = 0; k < row.nnz; ++k) {
    if (row.values[k] == 0.0) continue;
    if (row.indices[k] >= limit) continue;  // unseen feature: ignore
    score += delta_[static_cast<size_t>(row.indices[k])];
  }
  return score;
}

}  // namespace spa::ml
