#include "ml/online.h"

#include <algorithm>

namespace spa::ml {

namespace {
size_t MaxIndexPlusOne(const SparseRowView& x) {
  size_t needed = 0;
  for (size_t i = 0; i < x.nnz; ++i) {
    needed = std::max(needed, static_cast<size_t>(x.indices[i]) + 1);
  }
  return needed;
}
}  // namespace

Perceptron::Perceptron(bool averaged) : averaged_(averaged) {}

void Perceptron::EnsureDims(const SparseRowView& x) {
  const size_t needed = MaxIndexPlusOne(x);
  if (needed > w_.size()) {
    w_.resize(needed, 0.0);
    if (averaged_) w_accum_.resize(needed, 0.0);
  }
}

void Perceptron::Update(const SparseRowView& x, Label y) {
  EnsureDims(x);
  ++updates_;
  const double yd = static_cast<double>(y);
  const double margin = yd * (x.Dot(w_) + bias_);
  if (margin <= 0.0) {
    x.AxpyInto(yd, &w_);
    bias_ += yd;
    ++mistakes_;
  }
  if (averaged_) {
    Axpy(1.0, w_, &w_accum_);
    bias_accum_ += bias_;
  }
}

double Perceptron::Score(const SparseRowView& x) const {
  if (averaged_ && updates_ > 0) {
    const double inv = 1.0 / static_cast<double>(updates_);
    return (x.Dot(w_accum_) + bias_accum_) * inv;
  }
  return x.Dot(w_) + bias_;
}

PassiveAggressive::PassiveAggressive(double aggressiveness)
    : c_(aggressiveness) {}

void PassiveAggressive::EnsureDims(const SparseRowView& x) {
  const size_t needed = MaxIndexPlusOne(x);
  if (needed > w_.size()) w_.resize(needed, 0.0);
}

void PassiveAggressive::Update(const SparseRowView& x, Label y) {
  EnsureDims(x);
  ++updates_;
  const double yd = static_cast<double>(y);
  const double loss =
      std::max(0.0, 1.0 - yd * (x.Dot(w_) + bias_));
  if (loss == 0.0) return;
  const double norm_sq = x.L2NormSquared() + 1.0;  // +1 for the bias
  const double tau = std::min(c_, loss / norm_sq);
  x.AxpyInto(tau * yd, &w_);
  bias_ += tau * yd;
}

double PassiveAggressive::Score(const SparseRowView& x) const {
  return x.Dot(w_) + bias_;
}

}  // namespace spa::ml
