#include "ml/svm_linear.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"
#include "common/rng.h"

namespace spa::ml {

LinearSvm::LinearSvm(SvmConfig config) : config_(config) {}

spa::Status LinearSvm::Train(const Dataset& data) {
  SPA_RETURN_IF_ERROR(data.Validate());
  if (data.size() == 0) {
    return spa::Status::InvalidArgument("empty training set");
  }
  const size_t n = data.size();
  const size_t dims = static_cast<size_t>(data.features());

  // Bias is learned as an extra always-on feature with value bias_scale.
  const size_t wdims = dims + (config_.fit_bias ? 1 : 0);
  weights_.assign(wdims, 0.0);
  alphas_.assign(n, 0.0);

  // Per-example upper bound U and diagonal shift D (Hsieh et al. 2008,
  // Table 1): hinge -> U=C, D=0; squared hinge -> U=inf, D=1/(2C).
  const bool l2loss = config_.loss == SvmLoss::kSquaredHinge;

  std::vector<double> q_diag(n);
  for (size_t i = 0; i < n; ++i) {
    double q = data.x.row(i).L2NormSquared();
    if (config_.fit_bias) q += config_.bias_scale * config_.bias_scale;
    q_diag[i] = q;
  }

  auto c_of = [&](size_t i) {
    const double c =
        data.y[i] > 0 ? config_.c * config_.positive_class_weight : config_.c;
    return c;
  };

  Rng rng(config_.seed);
  std::vector<size_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = i;

  iterations_run_ = 0;
  for (int iter = 0; iter < config_.max_iterations; ++iter) {
    rng.Shuffle(&order);
    double max_pg = 0.0;
    for (size_t k = 0; k < n; ++k) {
      const size_t i = order[k];
      const SparseRowView xi = data.x.row(i);
      const double yi = static_cast<double>(data.y[i]);
      const double diag = l2loss ? 1.0 / (2.0 * c_of(i)) : 0.0;
      const double upper =
          l2loss ? std::numeric_limits<double>::infinity() : c_of(i);

      double wx = xi.Dot(weights_);
      if (config_.fit_bias) wx += weights_[dims] * config_.bias_scale;
      const double g = yi * wx - 1.0 + diag * alphas_[i];

      // Projected gradient for the box constraint 0 <= alpha <= U.
      double pg = g;
      if (alphas_[i] <= 0.0) {
        pg = std::min(g, 0.0);
      } else if (alphas_[i] >= upper) {
        pg = std::max(g, 0.0);
      }
      max_pg = std::max(max_pg, std::abs(pg));
      if (pg == 0.0) continue;

      const double qii = q_diag[i] + diag;
      if (qii <= 0.0) continue;
      const double old_alpha = alphas_[i];
      alphas_[i] = std::clamp(old_alpha - g / qii, 0.0, upper);
      const double delta = (alphas_[i] - old_alpha) * yi;
      if (delta != 0.0) {
        xi.AxpyInto(delta, &weights_);
        if (config_.fit_bias) {
          weights_[dims] += delta * config_.bias_scale;
        }
      }
    }
    ++iterations_run_;
    if (max_pg < config_.tolerance) break;
  }

  if (config_.fit_bias) {
    bias_ = weights_[dims] * config_.bias_scale;
    weights_.resize(dims);
  } else {
    bias_ = 0.0;
  }
  return spa::Status::OK();
}

PegasosSvm::PegasosSvm(SvmConfig config) : config_(config) {}

spa::Status PegasosSvm::Train(const Dataset& data) {
  initialized_ = false;
  step_ = 0;
  return RunEpochs(data, config_.max_iterations);
}

spa::Status PegasosSvm::PartialTrain(const Dataset& data) {
  return RunEpochs(data, 1);
}

spa::Status PegasosSvm::RunEpochs(const Dataset& data, int epochs) {
  SPA_RETURN_IF_ERROR(data.Validate());
  if (data.size() == 0) {
    return spa::Status::InvalidArgument("empty training set");
  }
  const size_t n = data.size();
  const size_t dims = static_cast<size_t>(data.features());

  if (!initialized_) {
    weights_.assign(dims, 0.0);
    weight_sum_.assign(dims, 0.0);
    bias_ = 0.0;
    bias_sum_ = 0.0;
    // lambda = 1 / (C n): matches the SVM objective scaling.
    lambda_ = 1.0 / (config_.c * static_cast<double>(n));
    initialized_ = true;
  } else if (weights_.size() < dims) {
    weights_.resize(dims, 0.0);  // feature space can only grow
    weight_sum_.resize(dims, 0.0);
  }

  Rng rng(config_.seed + static_cast<uint64_t>(step_));
  std::vector<size_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = i;

  for (int epoch = 0; epoch < epochs; ++epoch) {
    rng.Shuffle(&order);
    for (size_t k = 0; k < n; ++k) {
      const size_t i = order[k];
      ++step_;
      const double eta = 1.0 / (lambda_ * static_cast<double>(step_));
      const SparseRowView xi = data.x.row(i);
      const double yi = static_cast<double>(data.y[i]);
      const double margin = yi * (xi.Dot(weights_) + bias_);

      // w <- (1 - eta lambda) w  [+ eta y x when the margin is violated]
      const double shrink = 1.0 - eta * lambda_;
      if (shrink > 0.0) {
        Scale(shrink, &weights_);
      } else {
        std::fill(weights_.begin(), weights_.end(), 0.0);
      }
      if (margin < 1.0) {
        const double class_w =
            yi > 0.0 ? config_.positive_class_weight : 1.0;
        xi.AxpyInto(eta * yi * class_w, &weights_);
        if (config_.fit_bias) bias_ += eta * yi * class_w;
      }
      // Projection onto the ball of radius 1/sqrt(lambda) (Pegasos
      // step 5); bounds the early iterates so averaging is stable.
      const double norm_sq = L2NormSquared(weights_);
      const double radius_sq = 1.0 / lambda_;
      if (norm_sq > radius_sq) {
        Scale(std::sqrt(radius_sq / norm_sq), &weights_);
      }
      Axpy(1.0, weights_, &weight_sum_);
      bias_sum_ += bias_;
    }
  }
  // Materialize the averaged iterate used for scoring.
  avg_weights_ = weight_sum_;
  const double inv = 1.0 / static_cast<double>(step_);
  Scale(inv, &avg_weights_);
  avg_bias_ = bias_sum_ * inv;
  return spa::Status::OK();
}

}  // namespace spa::ml
