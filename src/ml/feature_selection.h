#ifndef SPA_ML_FEATURE_SELECTION_H_
#define SPA_ML_FEATURE_SELECTION_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "ml/dataset.h"
#include "ml/svm_linear.h"

/// \file
/// Dimensionality reduction. The paper: "To reduce the dimensionality of
/// the matrix generated we use Support Vector Machines (SVM)" — the
/// standard reading is SVM-based feature selection; we implement SVM-RFE
/// (Guyon et al., 2002) plus a chi-square filter baseline.

namespace spa::ml {

struct RfeConfig {
  /// Features to keep at the end.
  int32_t target_features = 20;
  /// Fraction of surviving features dropped per elimination round.
  double drop_fraction = 0.25;
  /// SVM trainer used to score features each round.
  SvmConfig svm;
};

/// \brief Result of a feature-selection pass.
struct FeatureSelection {
  /// Selected original feature indices, sorted ascending.
  std::vector<int32_t> selected;
  /// Rank of every original feature: 0 = eliminated first; higher ranks
  /// survived longer (selected features share the top rank).
  std::vector<int32_t> elimination_rank;
};

/// Runs SVM-RFE: repeatedly trains a linear SVM and drops the features
/// with the smallest |w| until `target_features` remain.
Result<FeatureSelection> SvmRfe(const Dataset& data, const RfeConfig& config);

/// Chi-square statistic of each (binarized) feature against the label;
/// higher = more dependent. Returns one score per feature.
std::vector<double> ChiSquareScores(const Dataset& data);

/// Top-k features by score (descending); ties broken by lower index.
std::vector<int32_t> SelectKBest(const std::vector<double>& scores,
                                 int32_t k);

/// Projects a dataset onto the selected features, remapping indices to
/// [0, selected.size()). `selected` must be sorted ascending.
Dataset ProjectDataset(const Dataset& data,
                       const std::vector<int32_t>& selected);

}  // namespace spa::ml

#endif  // SPA_ML_FEATURE_SELECTION_H_
