#include "ml/sparse.h"

#include <algorithm>

#include "common/check.h"

namespace spa::ml {

double SparseRowView::Dot(const std::vector<double>& dense) const {
  double acc = 0.0;
  const int32_t limit = static_cast<int32_t>(dense.size());
  for (size_t i = 0; i < nnz; ++i) {
    if (indices[i] >= limit) break;
    acc += values[i] * dense[static_cast<size_t>(indices[i])];
  }
  return acc;
}

void SparseRowView::AxpyInto(double alpha, std::vector<double>* dense) const {
  for (size_t i = 0; i < nnz; ++i) {
    SPA_DCHECK(static_cast<size_t>(indices[i]) < dense->size());
    (*dense)[static_cast<size_t>(indices[i])] += alpha * values[i];
  }
}

double SparseRowView::L2NormSquared() const {
  double acc = 0.0;
  for (size_t i = 0; i < nnz; ++i) acc += values[i] * values[i];
  return acc;
}

double SparseRowView::Dot(const SparseRowView& other) const {
  double acc = 0.0;
  size_t i = 0, j = 0;
  while (i < nnz && j < other.nnz) {
    const int32_t a = indices[i];
    const int32_t b = other.indices[j];
    if (a == b) {
      acc += values[i] * other.values[j];
      ++i;
      ++j;
    } else if (a < b) {
      ++i;
    } else {
      ++j;
    }
  }
  return acc;
}

SparseVector::SparseVector(const std::vector<SparseEntry>& entries) {
  indices_.reserve(entries.size());
  values_.reserve(entries.size());
  for (const auto& e : entries) {
    SPA_DCHECK(indices_.empty() || indices_.back() < e.index);
    indices_.push_back(e.index);
    values_.push_back(e.value);
  }
}

void SparseVector::PushBack(int32_t index, double value) {
  SPA_DCHECK(indices_.empty() || indices_.back() < index);
  indices_.push_back(index);
  values_.push_back(value);
}

void SparseMatrix::AppendRow(const SparseRowView& row) {
  for (size_t i = 0; i < row.nnz; ++i) {
    const int32_t idx = row.indices[i];
    SPA_DCHECK(idx >= 0);
    if (idx >= cols_) cols_ = idx + 1;
    indices_.push_back(idx);
    values_.push_back(row.values[i]);
  }
  indptr_.push_back(indices_.size());
}

void SparseMatrix::AppendRow(const std::vector<SparseEntry>& entries) {
  for (const auto& e : entries) {
    SPA_DCHECK(e.index >= 0);
    if (e.index >= cols_) cols_ = e.index + 1;
    indices_.push_back(e.index);
    values_.push_back(e.value);
  }
  indptr_.push_back(indices_.size());
}

SparseRowView SparseMatrix::row(size_t r) const {
  SPA_DCHECK(r < rows());
  const size_t begin = indptr_[r];
  const size_t end = indptr_[r + 1];
  SparseRowView view;
  view.indices = indices_.data() + begin;
  view.values = values_.data() + begin;
  view.nnz = end - begin;
  return view;
}

SparseVector SparseMatrix::RowCopy(size_t r) const {
  const SparseRowView v = row(r);
  SparseVector out;
  for (size_t i = 0; i < v.nnz; ++i) out.PushBack(v.indices[i], v.values[i]);
  return out;
}

void SparseMatrix::Reserve(size_t expected_rows, size_t expected_nnz) {
  indptr_.reserve(expected_rows + 1);
  indices_.reserve(expected_nnz);
  values_.reserve(expected_nnz);
}

void SparseMatrix::SetCols(int32_t cols) {
  SPA_CHECK(cols >= cols_);
  cols_ = cols;
}

void SparseMatrix::ScaleColumns(const std::vector<double>& factors) {
  SPA_CHECK(factors.size() == static_cast<size_t>(cols_));
  for (size_t i = 0; i < indices_.size(); ++i) {
    values_[i] *= factors[static_cast<size_t>(indices_[i])];
  }
}

double Dot(const std::vector<double>& a, const std::vector<double>& b) {
  SPA_DCHECK(a.size() == b.size());
  double acc = 0.0;
  for (size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

double L2NormSquared(const std::vector<double>& a) {
  double acc = 0.0;
  for (double v : a) acc += v * v;
  return acc;
}

void Axpy(double alpha, const std::vector<double>& x,
          std::vector<double>* y) {
  SPA_DCHECK(x.size() == y->size());
  for (size_t i = 0; i < x.size(); ++i) (*y)[i] += alpha * x[i];
}

void Scale(double alpha, std::vector<double>* x) {
  for (double& v : *x) v *= alpha;
}

}  // namespace spa::ml
