#include "ml/feature_selection.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/check.h"

namespace spa::ml {

Result<FeatureSelection> SvmRfe(const Dataset& data,
                                const RfeConfig& config) {
  SPA_RETURN_IF_ERROR(data.Validate());
  const int32_t total = data.features();
  if (config.target_features <= 0 || config.target_features > total) {
    return spa::Status::InvalidArgument("target_features out of range");
  }

  std::vector<int32_t> surviving(static_cast<size_t>(total));
  std::iota(surviving.begin(), surviving.end(), 0);

  FeatureSelection result;
  result.elimination_rank.assign(static_cast<size_t>(total), 0);
  int32_t round = 0;

  while (static_cast<int32_t>(surviving.size()) > config.target_features) {
    Dataset projected = ProjectDataset(data, surviving);
    LinearSvm svm(config.svm);
    SPA_RETURN_IF_ERROR(svm.Train(projected));
    const std::vector<double>& w = svm.weights();

    // Order surviving features by |w| ascending (weakest first).
    std::vector<size_t> order(surviving.size());
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      return std::abs(w[a]) < std::abs(w[b]);
    });

    size_t drop = static_cast<size_t>(
        std::floor(static_cast<double>(surviving.size()) *
                   config.drop_fraction));
    drop = std::max<size_t>(1, drop);
    drop = std::min(drop, surviving.size() -
                              static_cast<size_t>(config.target_features));

    ++round;
    std::vector<bool> dropped(surviving.size(), false);
    for (size_t k = 0; k < drop; ++k) {
      dropped[order[k]] = true;
      result.elimination_rank[static_cast<size_t>(surviving[order[k]])] =
          round;
    }
    std::vector<int32_t> next;
    next.reserve(surviving.size() - drop);
    for (size_t k = 0; k < surviving.size(); ++k) {
      if (!dropped[k]) next.push_back(surviving[k]);
    }
    surviving = std::move(next);
  }

  ++round;
  for (int32_t f : surviving) {
    result.elimination_rank[static_cast<size_t>(f)] = round;
  }
  result.selected = std::move(surviving);
  return result;
}

std::vector<double> ChiSquareScores(const Dataset& data) {
  const size_t dims = static_cast<size_t>(data.features());
  const size_t n = data.size();
  std::vector<double> pos_present(dims, 0.0);
  std::vector<double> neg_present(dims, 0.0);
  double n_pos = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const bool pos = data.y[i] > 0;
    if (pos) n_pos += 1.0;
    const SparseRowView row = data.x.row(i);
    for (size_t k = 0; k < row.nnz; ++k) {
      if (row.values[k] != 0.0) {
        auto& counts = pos ? pos_present : neg_present;
        counts[static_cast<size_t>(row.indices[k])] += 1.0;
      }
    }
  }
  const double n_neg = static_cast<double>(n) - n_pos;

  std::vector<double> scores(dims, 0.0);
  for (size_t f = 0; f < dims; ++f) {
    // 2x2 contingency: present/absent x positive/negative.
    const double a = pos_present[f];
    const double b = neg_present[f];
    const double c = n_pos - a;
    const double d = n_neg - b;
    const double total = a + b + c + d;
    if (total == 0.0) continue;
    const double denom = (a + b) * (c + d) * (a + c) * (b + d);
    if (denom == 0.0) continue;
    const double num = a * d - b * c;
    scores[f] = total * num * num / denom;
  }
  return scores;
}

std::vector<int32_t> SelectKBest(const std::vector<double>& scores,
                                 int32_t k) {
  SPA_CHECK(k >= 0);
  const int32_t n = static_cast<int32_t>(scores.size());
  k = std::min(k, n);
  std::vector<int32_t> order(static_cast<size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int32_t a, int32_t b) {
    const double sa = scores[static_cast<size_t>(a)];
    const double sb = scores[static_cast<size_t>(b)];
    if (sa != sb) return sa > sb;
    return a < b;
  });
  std::vector<int32_t> selected(order.begin(),
                                order.begin() + k);
  std::sort(selected.begin(), selected.end());
  return selected;
}

Dataset ProjectDataset(const Dataset& data,
                       const std::vector<int32_t>& selected) {
#ifndef NDEBUG
  for (size_t i = 1; i < selected.size(); ++i) {
    SPA_CHECK(selected[i - 1] < selected[i]);
  }
#endif
  // Old index -> new compact index (or -1).
  std::vector<int32_t> remap(static_cast<size_t>(data.features()), -1);
  for (size_t j = 0; j < selected.size(); ++j) {
    SPA_CHECK(selected[j] >= 0 && selected[j] < data.features());
    remap[static_cast<size_t>(selected[j])] = static_cast<int32_t>(j);
  }

  Dataset out;
  out.x.SetCols(static_cast<int32_t>(selected.size()));
  out.x.Reserve(data.size(), data.x.nnz());
  out.y = data.y;
  if (!data.feature_names.empty()) {
    out.feature_names.reserve(selected.size());
    for (int32_t f : selected) {
      out.feature_names.push_back(
          data.feature_names[static_cast<size_t>(f)]);
    }
  }
  std::vector<SparseEntry> entries;
  for (size_t i = 0; i < data.size(); ++i) {
    entries.clear();
    const SparseRowView row = data.x.row(i);
    for (size_t k = 0; k < row.nnz; ++k) {
      const int32_t nf = remap[static_cast<size_t>(row.indices[k])];
      if (nf >= 0) entries.push_back({nf, row.values[k]});
    }
    out.x.AppendRow(entries);
  }
  return out;
}

}  // namespace spa::ml
