#ifndef SPA_ML_DATASET_H_
#define SPA_ML_DATASET_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "ml/sparse.h"

/// \file
/// Labeled datasets for binary classification / ranking, plus the split
/// utilities the Smart Component uses for its offline evaluation.

namespace spa::ml {

/// Binary label, +1 / -1.
using Label = int8_t;

/// \brief Sparse design matrix with binary labels.
struct Dataset {
  SparseMatrix x;
  std::vector<Label> y;
  std::vector<std::string> feature_names;  // optional, size == x.cols()

  size_t size() const { return y.size(); }
  int32_t features() const { return x.cols(); }

  /// Number of positive labels.
  size_t positives() const;

  /// Validates shape invariants (row/label counts match, labels in
  /// {-1,+1}).
  spa::Status Validate() const;

  /// Builds a dataset containing the given row indices (in order).
  Dataset Subset(const std::vector<size_t>& rows) const;
};

/// Train/test split by shuffled indices. `test_fraction` in (0,1).
struct TrainTestSplit {
  std::vector<size_t> train;
  std::vector<size_t> test;
};
TrainTestSplit MakeTrainTestSplit(size_t n, double test_fraction, Rng* rng);

/// Stratified variant: preserves the positive rate in both parts.
TrainTestSplit MakeStratifiedSplit(const std::vector<Label>& y,
                                   double test_fraction, Rng* rng);

/// K-fold cross-validation index sets; fold f is the test set of split f.
std::vector<std::vector<size_t>> KFoldIndices(size_t n, size_t folds,
                                              Rng* rng);

/// Stratified K-fold (each fold keeps the global positive rate).
std::vector<std::vector<size_t>> StratifiedKFoldIndices(
    const std::vector<Label>& y, size_t folds, Rng* rng);

}  // namespace spa::ml

#endif  // SPA_ML_DATASET_H_
