#ifndef SPA_ML_NAIVE_BAYES_H_
#define SPA_ML_NAIVE_BAYES_H_

#include <string>
#include <vector>

#include "ml/classifier.h"

/// \file
/// Bernoulli naive Bayes over binarized features (value != 0 counts as
/// present). Cheap baseline used in the classifier-choice ablation; also
/// mirrors the "statistical techniques" the paper says most commercial
/// recommenders of the era used.

namespace spa::ml {

struct NaiveBayesConfig {
  double smoothing = 1.0;  ///< Laplace/Lidstone alpha
};

/// \brief Bernoulli NB; the decision function is the class log-odds.
class BernoulliNaiveBayes : public BinaryClassifier {
 public:
  explicit BernoulliNaiveBayes(NaiveBayesConfig config = {});

  spa::Status Train(const Dataset& data) override;
  double Score(const SparseRowView& row) const override;
  std::string name() const override { return "BernoulliNB"; }

 private:
  NaiveBayesConfig config_;
  // Score(x) = base_ + sum_{f present} delta_[f]; the absent-feature
  // contributions are folded into base_ at train time.
  double base_ = 0.0;
  std::vector<double> delta_;
};

}  // namespace spa::ml

#endif  // SPA_ML_NAIVE_BAYES_H_
