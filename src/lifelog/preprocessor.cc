#include "lifelog/preprocessor.h"

#include "common/check.h"
#include "common/string_util.h"

namespace spa::lifelog {

void PreprocessStats::Merge(const PreprocessStats& other) {
  lines_in += other.lines_in;
  parse_errors += other.parse_errors;
  bot_lines += other.bot_lines;
  error_status += other.error_status;
  anonymous += other.anonymous;
  non_action += other.non_action;
  unknown_action += other.unknown_action;
  duplicates += other.duplicates;
  events_out += other.events_out;
}

bool IsBotUserAgent(std::string_view user_agent) {
  const std::string lowered = spa::ToLower(user_agent);
  return lowered.find("bot") != std::string::npos ||
         lowered.find("crawler") != std::string::npos ||
         lowered.find("spider") != std::string::npos;
}

LifeLogPreprocessor::LifeLogPreprocessor(const ActionCatalog* catalog)
    : catalog_(catalog) {
  SPA_CHECK(catalog != nullptr);
}

bool LifeLogPreprocessor::ProcessLine(std::string_view line,
                                      LifeLogStore* store) {
  ++stats_.lines_in;
  const auto record = ParseCombined(line);
  if (!record.ok()) {
    ++stats_.parse_errors;
    return false;
  }
  if (IsBotUserAgent(record->user_agent)) {
    ++stats_.bot_lines;
    return false;
  }
  if (record->status >= 400) {
    ++stats_.error_status;
    return false;
  }
  if (record->user.empty() || record->user == "-") {
    ++stats_.anonymous;
    return false;
  }
  const auto event = EventFromRecord(record.value());
  if (!event.ok()) {
    if (event.status().code() == spa::StatusCode::kNotFound) {
      ++stats_.non_action;
    } else {
      ++stats_.parse_errors;
    }
    return false;
  }
  if (!catalog_->TypeOf(event->action_code).ok()) {
    ++stats_.unknown_action;
    return false;
  }
  const SeenKey key{event->user, event->time, event->action_code};
  if (!seen_.insert(key).second) {
    ++stats_.duplicates;
    return false;
  }
  store->Append(event.value());
  ++stats_.events_out;
  return true;
}

void LifeLogPreprocessor::ProcessLines(
    const std::vector<std::string>& lines, LifeLogStore* store) {
  for (const std::string& line : lines) {
    ProcessLine(line, store);
  }
}

}  // namespace spa::lifelog
