#include "lifelog/session.h"

#include <algorithm>
#include <set>

namespace spa::lifelog {

std::vector<Session> Sessionize(const std::vector<Event>& events,
                                const ActionCatalog& catalog,
                                spa::TimeMicros gap) {
  std::vector<Session> sessions;
  if (events.empty()) return sessions;

  Session current;
  std::set<ItemId> items;
  bool open = false;

  auto flush = [&] {
    if (open) {
      current.distinct_items = items.size();
      sessions.push_back(current);
      items.clear();
      open = false;
    }
  };

  for (const Event& event : events) {
    const bool new_session = !open || event.user != current.user ||
                             event.time - current.end > gap;
    if (new_session) {
      flush();
      current = Session{};
      current.user = event.user;
      current.start = event.time;
      open = true;
    }
    current.end = event.time;
    ++current.event_count;
    const auto type = catalog.TypeOf(event.action_code);
    if (type.ok()) {
      ++current.type_counts[static_cast<size_t>(type.value())];
    }
    if (event.item != kNoItem) items.insert(event.item);
  }
  flush();
  return sessions;
}

}  // namespace spa::lifelog
