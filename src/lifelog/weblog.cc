#include "lifelog/weblog.h"

#include <charconv>

#include "common/string_util.h"

namespace spa::lifelog {

namespace {

constexpr const char* kMonths[12] = {"Jan", "Feb", "Mar", "Apr",
                                     "May", "Jun", "Jul", "Aug",
                                     "Sep", "Oct", "Nov", "Dec"};

// Days from civil date (Howard Hinnant's algorithm), days since
// 1970-01-01.
int64_t DaysFromCivil(int y, int m, int d) {
  y -= m <= 2;
  const int era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);
  const unsigned doy =
      static_cast<unsigned>((153 * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1);
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
  return static_cast<int64_t>(era) * 146097 +
         static_cast<int64_t>(doe) - 719468;
}

// Inverse: civil date from days since epoch.
void CivilFromDays(int64_t z, int* y, unsigned* m, unsigned* d) {
  z += 719468;
  const int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);
  const unsigned yoe =
      (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const int64_t y_ = static_cast<int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
  const unsigned mp = (5 * doy + 2) / 153;
  *d = doy - (153 * mp + 2) / 5 + 1;
  *m = mp + (mp < 10 ? 3 : -9);
  *y = static_cast<int>(y_ + (*m <= 2));
}

bool ParseInt(std::string_view s, int64_t* out) {
  const auto [ptr, ec] =
      std::from_chars(s.data(), s.data() + s.size(), *out);
  return ec == std::errc() && ptr == s.data() + s.size();
}

}  // namespace

std::string FormatClfTime(spa::TimeMicros time) {
  const int64_t secs = time / spa::kMicrosPerSecond;
  const int64_t days = secs >= 0 ? secs / 86400
                                 : (secs - 86399) / 86400;
  const int64_t sod = secs - days * 86400;
  int y;
  unsigned m, d;
  CivilFromDays(days, &y, &m, &d);
  return spa::StrFormat("%02u/%s/%04d:%02lld:%02lld:%02lld +0000", d,
                        kMonths[m - 1], y,
                        static_cast<long long>(sod / 3600),
                        static_cast<long long>((sod / 60) % 60),
                        static_cast<long long>(sod % 60));
}

spa::Result<spa::TimeMicros> ParseClfTime(std::string_view text) {
  // dd/Mon/yyyy:HH:MM:SS +0000
  if (text.size() < 26) {
    return spa::Status::InvalidArgument("CLF time too short");
  }
  int64_t day, year, hh, mm, ss;
  if (!ParseInt(text.substr(0, 2), &day) ||
      !ParseInt(text.substr(7, 4), &year) ||
      !ParseInt(text.substr(12, 2), &hh) ||
      !ParseInt(text.substr(15, 2), &mm) ||
      !ParseInt(text.substr(18, 2), &ss)) {
    return spa::Status::InvalidArgument("bad CLF time numerals");
  }
  const std::string_view mon = text.substr(3, 3);
  int month = 0;
  for (int i = 0; i < 12; ++i) {
    if (mon == kMonths[i]) {
      month = i + 1;
      break;
    }
  }
  if (month == 0) {
    return spa::Status::InvalidArgument("bad CLF month");
  }
  const int64_t days =
      DaysFromCivil(static_cast<int>(year), month, static_cast<int>(day));
  const int64_t secs = days * 86400 + hh * 3600 + mm * 60 + ss;
  return secs * spa::kMicrosPerSecond;
}

std::string FormatCombined(const WeblogRecord& r) {
  return spa::StrFormat(
      "%s - %s [%s] \"%s %s HTTP/1.1\" %d %lld \"%s\" \"%s\"",
      r.host.c_str(), r.user.c_str(), FormatClfTime(r.time).c_str(),
      r.method.c_str(), r.path.c_str(), r.status,
      static_cast<long long>(r.bytes), r.referrer.c_str(),
      r.user_agent.c_str());
}

spa::Result<WeblogRecord> ParseCombined(std::string_view line) {
  WeblogRecord r;
  // %h - %u [time] "req" status bytes "ref" "ua"
  const size_t sp1 = line.find(' ');
  if (sp1 == std::string_view::npos) {
    return spa::Status::InvalidArgument("missing host field");
  }
  r.host = std::string(line.substr(0, sp1));

  const size_t bracket_open = line.find('[');
  const size_t bracket_close = line.find(']');
  if (bracket_open == std::string_view::npos ||
      bracket_close == std::string_view::npos ||
      bracket_close < bracket_open) {
    return spa::Status::InvalidArgument("missing timestamp brackets");
  }
  // ident + user between host and '['.
  const std::string_view mid =
      spa::Trim(line.substr(sp1, bracket_open - sp1));
  const auto mid_parts = spa::Split(std::string(mid), ' ');
  if (mid_parts.size() != 2) {
    return spa::Status::InvalidArgument("bad ident/user fields");
  }
  r.user = mid_parts[1];

  SPA_ASSIGN_OR_RETURN(
      r.time, ParseClfTime(line.substr(bracket_open + 1,
                                       bracket_close - bracket_open - 1)));

  const size_t q1 = line.find('"', bracket_close);
  if (q1 == std::string_view::npos) {
    return spa::Status::InvalidArgument("missing request quote");
  }
  const size_t q2 = line.find('"', q1 + 1);
  if (q2 == std::string_view::npos) {
    return spa::Status::InvalidArgument("unterminated request");
  }
  const std::string_view request = line.substr(q1 + 1, q2 - q1 - 1);
  const auto req_parts = spa::Split(std::string(request), ' ');
  if (req_parts.size() != 3) {
    return spa::Status::InvalidArgument("malformed request line");
  }
  r.method = req_parts[0];
  r.path = req_parts[1];

  const std::string_view tail = spa::Trim(line.substr(q2 + 1));
  const auto tail_parts = spa::Split(std::string(tail), ' ');
  if (tail_parts.size() < 2) {
    return spa::Status::InvalidArgument("missing status/bytes");
  }
  int64_t status;
  if (!ParseInt(tail_parts[0], &status)) {
    return spa::Status::InvalidArgument("bad status");
  }
  r.status = static_cast<int>(status);
  int64_t bytes = 0;
  if (tail_parts[1] != "-" && !ParseInt(tail_parts[1], &bytes)) {
    return spa::Status::InvalidArgument("bad byte count");
  }
  r.bytes = bytes;

  // Referrer and UA are the remaining quoted strings (optional).
  const size_t q3 = line.find('"', q2 + 1);
  if (q3 != std::string_view::npos) {
    const size_t q4 = line.find('"', q3 + 1);
    if (q4 != std::string_view::npos) {
      r.referrer = std::string(line.substr(q3 + 1, q4 - q3 - 1));
      const size_t q5 = line.find('"', q4 + 1);
      const size_t q6 =
          q5 == std::string_view::npos ? q5 : line.find('"', q5 + 1);
      if (q5 != std::string_view::npos &&
          q6 != std::string_view::npos) {
        r.user_agent = std::string(line.substr(q5 + 1, q6 - q5 - 1));
      }
    }
  }
  return r;
}

std::string PathForEvent(const Event& event) {
  if (event.item == kNoItem) {
    return spa::StrFormat("/a/%d?v=%.3f", event.action_code,
                          event.value);
  }
  return spa::StrFormat("/a/%d?item=%d&v=%.3f", event.action_code,
                        event.item, event.value);
}

spa::Result<Event> EventFromRecord(const WeblogRecord& record) {
  if (record.path.rfind("/a/", 0) != 0) {
    return spa::Status::NotFound("not an action path");
  }
  if (record.user.empty() || record.user == "-") {
    return spa::Status::InvalidArgument("anonymous record");
  }
  Event event;
  int64_t user;
  if (!ParseInt(record.user, &user)) {
    return spa::Status::InvalidArgument("non-numeric user id");
  }
  event.user = user;
  event.time = record.time;

  std::string_view rest = std::string_view(record.path).substr(3);
  const size_t qpos = rest.find('?');
  std::string_view code_part =
      qpos == std::string_view::npos ? rest : rest.substr(0, qpos);
  int64_t code;
  if (!ParseInt(code_part, &code)) {
    return spa::Status::InvalidArgument("bad action code in path");
  }
  event.action_code = static_cast<int32_t>(code);

  if (qpos != std::string_view::npos) {
    const auto params =
        spa::Split(std::string(rest.substr(qpos + 1)), '&');
    for (const std::string& param : params) {
      const size_t eq = param.find('=');
      if (eq == std::string::npos) continue;
      const std::string key = param.substr(0, eq);
      const std::string value = param.substr(eq + 1);
      if (key == "item") {
        int64_t item;
        if (!ParseInt(value, &item)) {
          return spa::Status::InvalidArgument("bad item id");
        }
        event.item = static_cast<ItemId>(item);
      } else if (key == "v") {
        event.value = std::strtod(value.c_str(), nullptr);
      }
    }
  }
  return event;
}

WeblogSynthesizer::WeblogSynthesizer(WeblogNoiseOptions options)
    : options_(options), rng_(options.seed, /*stream=*/77) {}

// GCC 12 reports a -Wrestrict false positive (PR105329) for literal
// assignments into strings of a just-copied struct at -O3; there is no
// actual overlap.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wrestrict"
#endif
void WeblogSynthesizer::Synthesize(const std::vector<Event>& events,
                                   std::vector<std::string>* out) {
  for (const Event& event : events) {
    WeblogRecord r;
    r.host = spa::StrFormat("10.%d.%d.%d",
                            static_cast<int>(rng_.UniformInt(0, 255)),
                            static_cast<int>(rng_.UniformInt(0, 255)),
                            static_cast<int>(rng_.UniformInt(0, 255)));
    r.user = std::to_string(event.user);
    r.time = event.time;
    r.method = "GET";
    r.path = PathForEvent(event);
    r.status = 200;
    r.bytes = rng_.UniformInt(200, 40000);
    r.referrer = "https://www.emagister-sim.test/";
    r.user_agent = "Mozilla/5.0 (SimBrowser)";
    out->push_back(FormatCombined(r));

    if (rng_.Bernoulli(options_.bot_fraction)) {
      WeblogRecord bot = r;
      bot.user = "-";
      bot.user_agent = "CrawlerBot/1.0";
      bot.path = "/robots.txt";
      out->push_back(FormatCombined(bot));
    }
    if (rng_.Bernoulli(options_.error_fraction)) {
      WeblogRecord err = r;
      err.status = rng_.Bernoulli(0.7) ? 404 : 500;
      err.path = "/missing/page";
      out->push_back(FormatCombined(err));
    }
    if (rng_.Bernoulli(options_.malformed_fraction)) {
      std::string broken = FormatCombined(r);
      broken.resize(broken.size() / 2);  // truncate mid-line
      out->push_back(broken);
    }
  }
}
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

}  // namespace spa::lifelog
