#ifndef SPA_LIFELOG_PREPROCESSOR_H_
#define SPA_LIFELOG_PREPROCESSOR_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_set>
#include <vector>

#include "lifelog/event.h"
#include "lifelog/store.h"
#include "lifelog/weblog.h"

/// \file
/// The LifeLogs pre-processing pipeline (SPA component 1): cleans raw
/// WebLog lines — dropping bot traffic, error responses, anonymous and
/// malformed records, deduplicating replays — and lands events in the
/// store. This is the work the paper's LifeLogs Pre-processor Agent
/// "replicates itself in pro-active way" to keep up with (§4); the agent
/// wrapper lives in src/agents/.

namespace spa::lifelog {

/// \brief Counters describing one pre-processing run.
struct PreprocessStats {
  uint64_t lines_in = 0;
  uint64_t parse_errors = 0;
  uint64_t bot_lines = 0;
  uint64_t error_status = 0;
  uint64_t anonymous = 0;
  uint64_t non_action = 0;
  uint64_t unknown_action = 0;
  uint64_t duplicates = 0;
  uint64_t events_out = 0;

  void Merge(const PreprocessStats& other);
};

/// \brief Stateless-per-line log cleaner with replay dedup.
class LifeLogPreprocessor {
 public:
  explicit LifeLogPreprocessor(const ActionCatalog* catalog);

  /// Processes one raw line; appends to `store` when it survives all
  /// filters. Returns true when an event was produced.
  bool ProcessLine(std::string_view line, LifeLogStore* store);

  /// Bulk variant.
  void ProcessLines(const std::vector<std::string>& lines,
                    LifeLogStore* store);

  const PreprocessStats& stats() const { return stats_; }
  void ResetStats() { stats_ = PreprocessStats{}; }

 private:
  /// Replay key: (user, time, action) — duplicate deliveries of the
  /// same action at the same instant are collapsed.
  struct SeenKey {
    UserId user;
    spa::TimeMicros time;
    int32_t action;
    bool operator==(const SeenKey&) const = default;
  };
  struct SeenKeyHash {
    size_t operator()(const SeenKey& k) const {
      size_t h = std::hash<int64_t>()(k.user);
      h ^= std::hash<int64_t>()(k.time) + 0x9e3779b97f4a7c15ULL +
           (h << 6) + (h >> 2);
      h ^= std::hash<int32_t>()(k.action) + 0x9e3779b97f4a7c15ULL +
           (h << 6) + (h >> 2);
      return h;
    }
  };

  const ActionCatalog* catalog_;
  PreprocessStats stats_;
  std::unordered_set<SeenKey, SeenKeyHash> seen_;
};

/// Returns true for user agents the pipeline treats as robots.
bool IsBotUserAgent(std::string_view user_agent);

}  // namespace spa::lifelog

#endif  // SPA_LIFELOG_PREPROCESSOR_H_
