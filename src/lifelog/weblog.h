#ifndef SPA_LIFELOG_WEBLOG_H_
#define SPA_LIFELOG_WEBLOG_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "lifelog/event.h"

/// \file
/// Apache combined-log-format WebLogs. The deployment ingested "close to
/// 50 Gb/month" of WebLogs (§5.1); since the production logs are
/// proprietary, `WeblogSynthesizer` emits combined-format lines from the
/// simulated behaviour stream — including the bot traffic, error lines
/// and malformed records a real pipeline must survive — and
/// `ParseCombined` + `EventFromRecord` recover events exactly like a
/// production ETL would.

namespace spa::lifelog {

/// \brief One parsed combined-format log record.
struct WeblogRecord {
  std::string host;        ///< %h
  std::string user;        ///< %u (authenticated user id, "-" if none)
  spa::TimeMicros time = 0;
  std::string method;      ///< GET/POST
  std::string path;        ///< request path incl. query
  int status = 200;        ///< %>s
  int64_t bytes = 0;       ///< %b
  std::string referrer;
  std::string user_agent;
};

/// Renders a record as one combined-format line (no trailing newline).
std::string FormatCombined(const WeblogRecord& record);

/// Parses one combined-format line.
spa::Result<WeblogRecord> ParseCombined(std::string_view line);

/// Formats a simulated timestamp as `[dd/Mon/yyyy:HH:MM:SS +0000]`
/// content (without brackets).
std::string FormatClfTime(spa::TimeMicros time);

/// Parses CLF time back into simulated micros.
spa::Result<spa::TimeMicros> ParseClfTime(std::string_view text);

/// Builds the request path encoding an event
/// (`/a/<action_code>?item=<item>&v=<value>`).
std::string PathForEvent(const Event& event);

/// Reverses PathForEvent; NotFound for non-event paths (static assets).
spa::Result<Event> EventFromRecord(const WeblogRecord& record);

/// Noise profile for the synthesizer.
struct WeblogNoiseOptions {
  double bot_fraction = 0.05;        ///< extra bot lines per event
  double error_fraction = 0.03;      ///< extra 4xx/5xx lines per event
  double malformed_fraction = 0.01;  ///< truncated/garbled lines
  uint64_t seed = 42;
};

/// \brief Emits combined-format lines for an event stream, mixed with
/// configurable noise (bots, 4xx/5xx lines, malformed records).
class WeblogSynthesizer {
 public:
  explicit WeblogSynthesizer(WeblogNoiseOptions options = {});

  /// Appends the log lines for `events` (noise interleaved) to `out`.
  void Synthesize(const std::vector<Event>& events,
                  std::vector<std::string>* out);

 private:
  WeblogNoiseOptions options_;
  Rng rng_;
};

}  // namespace spa::lifelog

#endif  // SPA_LIFELOG_WEBLOG_H_
