#include "lifelog/store.h"

#include <sstream>

#include "common/csv.h"
#include "common/string_util.h"

namespace spa::lifelog {

void LifeLogStore::Append(const Event& event) {
  auto [it, inserted] = by_user_.try_emplace(event.user);
  if (inserted) user_order_.push_back(event.user);
  it->second.push_back(event);
  ++total_events_;
}

const std::vector<Event>& LifeLogStore::UserEvents(UserId user) const {
  static const std::vector<Event> kEmpty;
  const auto it = by_user_.find(user);
  return it == by_user_.end() ? kEmpty : it->second;
}

void LifeLogStore::ForEachUser(
    const std::function<void(UserId, const std::vector<Event>&)>& fn)
    const {
  for (UserId user : user_order_) {
    fn(user, by_user_.at(user));
  }
}

std::string LifeLogStore::ToCsv() const {
  std::ostringstream out;
  spa::CsvWriter writer(&out);
  writer.WriteRow({"user", "time", "action_code", "item", "value"});
  ForEachUser([&writer](UserId user, const std::vector<Event>& events) {
    for (const Event& e : events) {
      writer.WriteRow({std::to_string(user), std::to_string(e.time),
                       std::to_string(e.action_code),
                       std::to_string(e.item),
                       spa::StrFormat("%.6f", e.value)});
    }
  });
  return out.str();
}

spa::Result<LifeLogStore> LifeLogStore::FromCsv(const std::string& text) {
  SPA_ASSIGN_OR_RETURN(auto rows, spa::ParseCsv(text));
  if (rows.empty()) {
    return spa::Status::InvalidArgument("empty LifeLog CSV");
  }
  LifeLogStore store;
  for (size_t i = 1; i < rows.size(); ++i) {  // skip header
    const auto& row = rows[i];
    if (row.size() != 5) {
      return spa::Status::InvalidArgument(
          spa::StrFormat("row %zu has %zu fields, expected 5", i,
                         row.size()));
    }
    Event e;
    int64_t action_code, item;
    const bool parsed = spa::ParseInt64(row[0], &e.user) &&
                        spa::ParseInt64(row[1], &e.time) &&
                        spa::ParseInt64(row[2], &action_code) &&
                        spa::ParseInt64(row[3], &item) &&
                        spa::ParseDouble(row[4], &e.value);
    if (!parsed) {
      return spa::Status::InvalidArgument(
          spa::StrFormat("row %zu has non-numeric fields", i));
    }
    e.action_code = static_cast<int32_t>(action_code);
    e.item = static_cast<ItemId>(item);
    store.Append(e);
  }
  return store;
}

}  // namespace spa::lifelog
