#ifndef SPA_LIFELOG_SESSION_H_
#define SPA_LIFELOG_SESSION_H_

#include <array>
#include <vector>

#include "common/sim_clock.h"
#include "lifelog/event.h"

/// \file
/// Sessionization of LifeLog streams (click-stream analysis, §5): events
/// of one user separated by less than an inactivity gap belong to the
/// same visit.

namespace spa::lifelog {

/// \brief One user visit.
struct Session {
  UserId user = 0;
  spa::TimeMicros start = 0;
  spa::TimeMicros end = 0;
  size_t event_count = 0;
  std::array<size_t, kNumActionTypes> type_counts{};
  size_t distinct_items = 0;

  spa::TimeMicros duration() const { return end - start; }
};

/// Default inactivity gap closing a session (industry-standard 30 min).
inline constexpr spa::TimeMicros kDefaultSessionGap =
    30 * spa::kMicrosPerMinute;

/// Splits per-user, time-sorted events into sessions. Events must be
/// grouped by user and sorted by time within each user (the LifeLog
/// store's natural order); the catalog maps codes to categories.
std::vector<Session> Sessionize(const std::vector<Event>& events,
                                const ActionCatalog& catalog,
                                spa::TimeMicros gap = kDefaultSessionGap);

}  // namespace spa::lifelog

#endif  // SPA_LIFELOG_SESSION_H_
