#include "lifelog/event.h"

#include "common/check.h"
#include "common/string_util.h"

namespace spa::lifelog {

std::string_view ActionTypeName(ActionType t) {
  switch (t) {
    case ActionType::kPageView:
      return "pageview";
    case ActionType::kClick:
      return "click";
    case ActionType::kSearch:
      return "search";
    case ActionType::kEmailOpen:
      return "email_open";
    case ActionType::kEmailClick:
      return "email_click";
    case ActionType::kInfoRequest:
      return "info_request";
    case ActionType::kEnrollment:
      return "enrollment";
    case ActionType::kRating:
      return "rating";
    case ActionType::kOpinion:
      return "opinion";
    case ActionType::kEitAnswer:
      return "eit_answer";
  }
  return "unknown";
}

ActionCatalog ActionCatalog::FromCounts(
    const std::array<size_t, kNumActionTypes>& counts) {
  ActionCatalog catalog;
  catalog.codes_by_type_.resize(kNumActionTypes);
  int32_t code = 0;
  for (size_t t = 0; t < kNumActionTypes; ++t) {
    for (size_t i = 0; i < counts[t]; ++i) {
      catalog.types_.push_back(static_cast<ActionType>(t));
      catalog.codes_by_type_[t].push_back(code);
      ++code;
    }
  }
  return catalog;
}

ActionCatalog ActionCatalog::Standard() {
  // Category mix summing to the paper's 984 observable actions.
  static constexpr std::array<size_t, kNumActionTypes> kCounts = {
      400,  // pageview
      250,  // click
      100,  // search
      50,   // email_open
      50,   // email_click
      50,   // info_request
      30,   // enrollment
      24,   // rating
      20,   // opinion
      10,   // eit_answer
  };
  ActionCatalog catalog = FromCounts(kCounts);
  SPA_CHECK(catalog.size() == 984);
  return catalog;
}

ActionCatalog ActionCatalog::Small(size_t per_type) {
  std::array<size_t, kNumActionTypes> counts;
  counts.fill(per_type);
  return FromCounts(counts);
}

spa::Result<ActionType> ActionCatalog::TypeOf(int32_t code) const {
  if (code < 0 || static_cast<size_t>(code) >= types_.size()) {
    return spa::Status::OutOfRange(
        spa::StrFormat("action code %d outside catalog of %zu", code,
                       types_.size()));
  }
  return types_[static_cast<size_t>(code)];
}

std::string ActionCatalog::NameOf(int32_t code) const {
  if (code < 0 || static_cast<size_t>(code) >= types_.size()) {
    return spa::StrFormat("invalid/%d", code);
  }
  const ActionType t = types_[static_cast<size_t>(code)];
  const auto& codes = codes_by_type_[static_cast<size_t>(t)];
  // Codes within a category are contiguous: offset from the first.
  const size_t pos = static_cast<size_t>(code - codes.front());
  return spa::StrFormat("%s/%zu", std::string(ActionTypeName(t)).c_str(),
                        pos);
}

const std::vector<int32_t>& ActionCatalog::CodesFor(ActionType t) const {
  return codes_by_type_[static_cast<size_t>(t)];
}

bool ActionCatalog::IsTransaction(ActionType t) {
  switch (t) {
    case ActionType::kClick:
    case ActionType::kEmailClick:
    case ActionType::kInfoRequest:
    case ActionType::kEnrollment:
    case ActionType::kOpinion:
      return true;
    default:
      return false;
  }
}

}  // namespace spa::lifelog
