#ifndef SPA_LIFELOG_FEATURES_H_
#define SPA_LIFELOG_FEATURES_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/sim_clock.h"
#include "common/status.h"
#include "lifelog/event.h"
#include "lifelog/session.h"
#include "ml/sparse.h"

/// \file
/// Behavioural feature extraction: turns a user's LifeLog into the
/// sparse feature vector consumed by the Smart Component. Covers the
/// classic RFM triple, per-category activity, and session statistics.

namespace spa::lifelog {

/// \brief Name <-> index registry for a feature space. Indices are
/// assigned densely in registration order so multiple producers
/// (behavioural, SUM, EIT) can share one space.
class FeatureSpace {
 public:
  /// Registers (or finds) a feature, returning its index.
  int32_t Intern(const std::string& name);

  /// Index of an existing feature; NotFound otherwise.
  spa::Result<int32_t> IndexOf(const std::string& name) const;

  const std::string& NameOf(int32_t index) const;
  int32_t size() const { return static_cast<int32_t>(names_.size()); }
  const std::vector<std::string>& names() const { return names_; }

 private:
  std::unordered_map<std::string, int32_t> index_;
  std::vector<std::string> names_;
};

/// \brief Extracts behavioural features from one user's events.
///
/// Registers its features in the shared FeatureSpace at construction;
/// extraction is then allocation-light and thread-safe.
class BehaviorFeatureExtractor {
 public:
  BehaviorFeatureExtractor(const ActionCatalog* catalog,
                           FeatureSpace* space);

  /// Features for `events` (one user's, time-sorted) as of `now`.
  /// Produces: log1p counts per action category, recency in days,
  /// frequency (events/active-day), distinct items, session count,
  /// mean session duration minutes, mean rating given.
  ml::SparseVector Extract(const std::vector<Event>& events,
                           spa::TimeMicros now) const;

 private:
  const ActionCatalog* catalog_;
  std::array<int32_t, kNumActionTypes> type_count_idx_{};
  int32_t recency_idx_ = -1;
  int32_t frequency_idx_ = -1;
  int32_t distinct_items_idx_ = -1;
  int32_t session_count_idx_ = -1;
  int32_t mean_session_minutes_idx_ = -1;
  int32_t mean_rating_idx_ = -1;
  int32_t transactions_idx_ = -1;
};

}  // namespace spa::lifelog

#endif  // SPA_LIFELOG_FEATURES_H_
