#ifndef SPA_LIFELOG_STORE_H_
#define SPA_LIFELOG_STORE_H_

#include <functional>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "lifelog/event.h"

/// \file
/// In-memory LifeLog store: append-only event log with a per-user index,
/// the substrate behind "the continuous storage of raw information
/// streams" (§4). Supports CSV spill/load for offline processing.

namespace spa::lifelog {

/// \brief Append-only per-user event store.
class LifeLogStore {
 public:
  /// Appends one event (events should arrive in nondecreasing time per
  /// user; the store keeps arrival order).
  void Append(const Event& event);

  /// All events of one user, in arrival order (empty if unknown).
  const std::vector<Event>& UserEvents(UserId user) const;

  size_t total_events() const { return total_events_; }
  size_t user_count() const { return by_user_.size(); }

  /// Applies `fn` to every (user, events) pair; iteration order is
  /// unspecified but deterministic for a fixed insertion sequence.
  void ForEachUser(
      const std::function<void(UserId, const std::vector<Event>&)>& fn)
      const;

  /// Users in insertion order of first appearance.
  const std::vector<UserId>& users() const { return user_order_; }

  /// Serializes all events as CSV (header + one row per event).
  std::string ToCsv() const;

  /// Restores a store from ToCsv() output.
  static spa::Result<LifeLogStore> FromCsv(const std::string& text);

 private:
  std::unordered_map<UserId, std::vector<Event>> by_user_;
  std::vector<UserId> user_order_;
  size_t total_events_ = 0;
};

}  // namespace spa::lifelog

#endif  // SPA_LIFELOG_STORE_H_
