#include "lifelog/features.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "common/check.h"
#include "common/string_util.h"

namespace spa::lifelog {

int32_t FeatureSpace::Intern(const std::string& name) {
  const auto it = index_.find(name);
  if (it != index_.end()) return it->second;
  const int32_t idx = static_cast<int32_t>(names_.size());
  names_.push_back(name);
  index_.emplace(name, idx);
  return idx;
}

spa::Result<int32_t> FeatureSpace::IndexOf(const std::string& name) const {
  const auto it = index_.find(name);
  if (it == index_.end()) {
    return spa::Status::NotFound(
        spa::StrFormat("unknown feature '%s'", name.c_str()));
  }
  return it->second;
}

const std::string& FeatureSpace::NameOf(int32_t index) const {
  SPA_CHECK(index >= 0 && static_cast<size_t>(index) < names_.size());
  return names_[static_cast<size_t>(index)];
}

BehaviorFeatureExtractor::BehaviorFeatureExtractor(
    const ActionCatalog* catalog, FeatureSpace* space)
    : catalog_(catalog) {
  SPA_CHECK(catalog != nullptr && space != nullptr);
  for (size_t t = 0; t < kNumActionTypes; ++t) {
    type_count_idx_[t] = space->Intern(spa::StrFormat(
        "behavior.count.%s",
        std::string(ActionTypeName(static_cast<ActionType>(t))).c_str()));
  }
  recency_idx_ = space->Intern("behavior.recency_days");
  frequency_idx_ = space->Intern("behavior.events_per_day");
  distinct_items_idx_ = space->Intern("behavior.distinct_items");
  session_count_idx_ = space->Intern("behavior.session_count");
  mean_session_minutes_idx_ =
      space->Intern("behavior.mean_session_minutes");
  mean_rating_idx_ = space->Intern("behavior.mean_rating");
  transactions_idx_ = space->Intern("behavior.transactions");
}

ml::SparseVector BehaviorFeatureExtractor::Extract(
    const std::vector<Event>& events, spa::TimeMicros now) const {
  // Collect (index, value) pairs then sort: feature indices from
  // different groups are interleaved in the shared space.
  std::vector<ml::SparseEntry> entries;
  if (events.empty()) return ml::SparseVector();

  std::array<size_t, kNumActionTypes> counts{};
  std::set<ItemId> items;
  double rating_sum = 0.0;
  size_t rating_count = 0;
  size_t transactions = 0;
  spa::TimeMicros first = events.front().time;
  spa::TimeMicros last = events.front().time;

  for (const Event& e : events) {
    first = std::min(first, e.time);
    last = std::max(last, e.time);
    const auto type = catalog_->TypeOf(e.action_code);
    if (type.ok()) {
      ++counts[static_cast<size_t>(type.value())];
      if (type.value() == ActionType::kRating) {
        rating_sum += e.value;
        ++rating_count;
      }
      if (ActionCatalog::IsTransaction(type.value())) ++transactions;
    }
    if (e.item != kNoItem) items.insert(e.item);
  }

  for (size_t t = 0; t < kNumActionTypes; ++t) {
    if (counts[t] > 0) {
      entries.push_back({type_count_idx_[t],
                         std::log1p(static_cast<double>(counts[t]))});
    }
  }

  const double recency_days =
      static_cast<double>(std::max<spa::TimeMicros>(0, now - last)) /
      static_cast<double>(spa::kMicrosPerDay);
  entries.push_back({recency_idx_, recency_days});

  const double active_days =
      1.0 + static_cast<double>(last - first) /
                static_cast<double>(spa::kMicrosPerDay);
  entries.push_back(
      {frequency_idx_,
       static_cast<double>(events.size()) / active_days});

  if (!items.empty()) {
    entries.push_back({distinct_items_idx_,
                       std::log1p(static_cast<double>(items.size()))});
  }

  const auto sessions = Sessionize(events, *catalog_);
  if (!sessions.empty()) {
    entries.push_back(
        {session_count_idx_,
         std::log1p(static_cast<double>(sessions.size()))});
    double total_minutes = 0.0;
    for (const Session& s : sessions) {
      total_minutes += static_cast<double>(s.duration()) /
                       static_cast<double>(spa::kMicrosPerMinute);
    }
    entries.push_back(
        {mean_session_minutes_idx_,
         total_minutes / static_cast<double>(sessions.size())});
  }

  if (rating_count > 0) {
    entries.push_back(
        {mean_rating_idx_,
         rating_sum / static_cast<double>(rating_count)});
  }
  if (transactions > 0) {
    entries.push_back({transactions_idx_,
                       std::log1p(static_cast<double>(transactions))});
  }

  std::sort(entries.begin(), entries.end(),
            [](const ml::SparseEntry& a, const ml::SparseEntry& b) {
              return a.index < b.index;
            });
  return ml::SparseVector(entries);
}

}  // namespace spa::lifelog
